// Command taxisim runs dispatch algorithms over a synthetic or CSV trace
// and prints metrics summaries:
//
//	taxisim -city boston -algo nstd-p -taxis 200 -frames 1440
//	taxisim -trace day.csv -city newyork -algo raii
//	taxisim -algo nstd-p,greedy,mincost    # side-by-side comparison
//	taxisim -algo all                      # every algorithm
//	taxisim -algo nstd-p -trace-out decisions.json   # Chrome trace of dispatch decisions
//	taxisim -algo nstd-p -kpi-out kpi.csv            # per-frame KPI time series
//	taxisim -algo nstd-p,greedy -kpi-out kpi.csv     # one CSV per algorithm (kpi.nstd-p.csv, …)
//	taxisim -algo nstd-p -slo ci/watchdog.slo -bundle-dir bundles   # SLO watchdog + flight recorder
//
// Algorithms: nstd-p, nstd-t, nstd-c, nstd-m, greedy, mincost, bottleneck
// (non-sharing); std-p, std-t, raii, sarp, ilp (sharing).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"stabledispatch/internal/carpool"
	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/fault"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/prof"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/stats"
	"stabledispatch/internal/trace"
	"stabledispatch/internal/tseries"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "taxisim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("taxisim", flag.ContinueOnError)
	var (
		cityName  = fs.String("city", "boston", "city model: boston or newyork")
		traceFile = fs.String("trace", "", "optional CSV trace to replay instead of generating")
		algo      = fs.String("algo", "nstd-p", "dispatch algorithm")
		taxis     = fs.Int("taxis", 0, "fleet size (0 = paper default for the city)")
		frames    = fs.Int("frames", 1440, "horizon in minutes")
		volume    = fs.Int("volume", 0, "requests per day (0 = paper default)")
		seed      = fs.Int64("seed", 42, "random seed")
		theta     = fs.Float64("theta", 5, "sharing detour bound in km")
		speed     = fs.Float64("speed", 20, "taxi speed in km/h")
		patience  = fs.Int("patience", 0, "minutes a passenger waits before abandoning (0 = forever)")
		workers   = fs.Int("workers", 0, "cost-plane worker pool size; 0 = GOMAXPROCS (results are identical for any value)")
		eventPath = fs.String("events", "", "write a JSONL lifecycle event log to this file")
		traceOut  = fs.String("trace-out", "", "write a Chrome trace-event JSON of dispatch decisions to this file (single algorithm only)")
		kpiOut    = fs.String("kpi-out", "", "write the per-frame KPI time series as CSV to this file (multi-algorithm runs write one suffixed file per algorithm)")
		traceCap  = fs.Int("trace-capacity", dtrace.DefaultCapacity, "max request traces retained when -trace-out is set")
		sloPath   = fs.String("slo", "", "SLO definitions file; objectives are evaluated every frame and a report line is printed per run")
		bundleDir = fs.String("bundle-dir", "", "flight-recorder bundle directory; enables diagnostic bundles on SLO breach, degrade, or certificate violation")

		faultSeed     = fs.Int64("fault-seed", 0, "seed for the fault-injection schedule (0 = derive from -seed)")
		breakdownRate = fs.Float64("breakdown-rate", 0, "per-frame probability a busy taxi breaks down mid-route")
		cancelRate    = fs.Float64("cancel-rate", 0, "probability a passenger cancels before pickup")
		driverCancel  = fs.Float64("driver-cancel-rate", 0, "probability a driver abandons an accepted fare before pickup")
		frameDDL      = fs.Duration("frame-deadline", 0, "per-frame dispatch compute deadline; overruns and panics degrade to greedy (0 = unbounded)")
		profBudget    = fs.Duration("prof-budget", 0, "frame deadline budget for the frame-budget profiler; overruns print in the run summary and, with -bundle-dir, capture pprof CPU/heap deltas into a flight-recorder bundle (0 = off)")
		profCapt      = fs.Int("prof-capture-frames", prof.DefaultCaptureFrames, "frames the CPU profile spans after an overrun trigger")
		profCool      = fs.Int64("prof-cooldown", prof.DefaultCooldownFrames, "minimum frames between two overrun captures; overruns inside it are counted, not captured")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var faults sim.FaultInjector
	// != 0, not > 0: a negative rate must reach fault.Config.Validate
	// and be rejected, not silently disable injection.
	if *breakdownRate != 0 || *cancelRate != 0 || *driverCancel != 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		sched, err := fault.New(fault.Config{
			Seed:                fseed,
			BreakdownRate:       *breakdownRate,
			PassengerCancelRate: *cancelRate,
			DriverCancelRate:    *driverCancel,
		})
		if err != nil {
			return err
		}
		faults = sched
	}

	city, defTaxis, defVolume, err := cityByName(*cityName)
	if err != nil {
		return err
	}
	if *taxis == 0 {
		*taxis = defTaxis
	}
	if *volume == 0 {
		*volume = defVolume
	}

	var reqs []fleet.Request
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		reqs, err = trace.ReadCSV(f)
		if err != nil {
			return err
		}
	} else {
		reqs, err = trace.Generate(trace.Config{
			City:           city,
			Frames:         *frames,
			RequestsPerDay: *volume,
			Seats:          3,
			Seed:           *seed,
		})
		if err != nil {
			return err
		}
	}
	fleetTaxis, err := trace.Taxis(city, *taxis, *seed+1)
	if err != nil {
		return err
	}

	var events sim.EventSink
	if *eventPath != "" {
		f, err := os.Create(*eventPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sink := sim.NewJSONLSink(f)
		defer func() {
			if err := sink.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "taxisim: event log:", err)
			}
		}()
		events = sink
	}

	names := strings.Split(*algo, ",")
	if strings.EqualFold(*algo, "all") {
		names = allAlgorithms()
	}
	if *traceOut != "" {
		// The decision-trace ring is process-wide; a second run would
		// interleave its decisions with the first.
		if len(names) > 1 {
			return fmt.Errorf("-trace-out requires a single algorithm, got %d", len(names))
		}
		dtrace.SetEnabled(true)
		dtrace.Default().SetCapacity(*traceCap)
		defer dtrace.SetEnabled(false)
	}
	var sloDefs []slo.Def
	if *sloPath != "" {
		sloDefs, err = slo.ParseFile(*sloPath)
		if err != nil {
			return err
		}
	}
	if *bundleDir != "" {
		if _, err := flightrec.Configure(flightrec.Config{Dir: *bundleDir, ChromeTrace: *traceOut != ""}); err != nil {
			return err
		}
		defer flightrec.Disable()
	}
	if *profBudget > 0 {
		profCfg := prof.Config{
			BudgetNs:       profBudget.Nanoseconds(),
			CaptureFrames:  *profCapt,
			CooldownFrames: *profCool,
		}
		if *bundleDir != "" {
			profCfg.OnCapture = flightrec.OverrunHandler()
		}
		prof.Configure(profCfg)
		defer prof.Disable()
	}
	var reports []*sim.Report
	var sloLines []string
	for _, name := range names {
		d, err := dispatcherByName(strings.TrimSpace(name), *theta)
		if err != nil {
			return err
		}
		if *frameDDL > 0 {
			d = dispatch.NewResilient(d, nil, *frameDDL)
		}
		// Each algorithm gets its own recorder so a comparison run keeps
		// per-run trajectories separate. Downsampling keeps the whole-run
		// trajectory bounded: a paper-scale day (1440 frames) fits
		// losslessly, and longer replays compact to every 2nd/4th/...
		// frame instead of dropping the start of the day. The SLO engine
		// needs the sample stream too, so -slo implies a recorder.
		var kpi *tseries.Recorder
		if *kpiOut != "" || len(sloDefs) > 0 {
			kpi = tseries.New(tseries.Config{Capacity: 4096, Downsample: true})
		}
		var sloEng *slo.Engine
		if len(sloDefs) > 0 {
			if sloEng, err = slo.New(sloDefs); err != nil {
				return err
			}
		}
		s, err := sim.New(sim.Config{
			SpeedKmH:       *speed,
			Params:         pref.DefaultParams(),
			Dispatcher:     d,
			PatienceFrames: *patience,
			Events:         events,
			Faults:         faults,
			KPI:            kpi,
			SLO:            sloEng,
			Workers:        *workers,
		}, fleetTaxis, reqs)
		if err != nil {
			return err
		}
		rep, err := s.Run()
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if *kpiOut != "" {
			path := *kpiOut
			if len(names) > 1 {
				path = kpiOutPath(*kpiOut, strings.TrimSpace(name))
			}
			if err := writeKPISeries(path, kpi); err != nil {
				return err
			}
		}
		if sloEng != nil {
			sloLines = append(sloLines, fmt.Sprintf("%s: %s", rep.Algorithm, sloEng.Report()))
		}
	}
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut); err != nil {
			return err
		}
	}
	if len(reports) == 1 {
		if err := printSummary(out, reports[0], len(reqs), *taxis); err != nil {
			return err
		}
	} else if err := printComparison(out, reports, len(reqs), *taxis); err != nil {
		return err
	}
	for _, line := range sloLines {
		if _, err := fmt.Fprintln(out, line); err != nil {
			return err
		}
	}
	return nil
}

// kpiOutPath derives the per-algorithm CSV path for a multi-algorithm
// run by inserting the algorithm name before the extension:
// "out/kpi.csv" + "nstd-p" → "out/kpi.nstd-p.csv".
func kpiOutPath(base, algo string) string {
	dir, file := filepath.Split(base)
	ext := filepath.Ext(file)
	return dir + strings.TrimSuffix(file, ext) + "." + strings.ToLower(algo) + ext
}

// writeKPISeries dumps the run's per-frame KPI trajectory as CSV, every
// known series as one column.
func writeKPISeries(path string, rec *tseries.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tseries.WriteCSV(f, rec.Snapshot(), tseries.SeriesNames); err != nil {
		f.Close()
		return fmt.Errorf("write kpi series %s: %w", path, err)
	}
	return f.Close()
}

// writeChromeTrace dumps the run's decision traces in the Chrome
// trace-event format (load in chrome://tracing or Perfetto).
func writeChromeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dtrace.Default().WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace %s: %w", path, err)
	}
	return f.Close()
}

// allAlgorithms lists every dispatcher name for -algo all, the paper's
// algorithms first.
func allAlgorithms() []string {
	return []string{
		"nstd-p", "nstd-t", "nstd-c", "nstd-m",
		"greedy", "mincost", "bottleneck",
		"std-p", "std-t", "raii", "sarp", "ilp",
	}
}

// printComparison renders one row per algorithm with the paper's three
// metrics.
func printComparison(w io.Writer, reports []*sim.Report, total, taxis int) error {
	tb := stats.Table{
		Title: fmt.Sprintf("comparison over %d requests, %d taxis", total, taxis),
		Columns: []string{
			"algorithm", "served", "delay mean", "delay p95",
			"pass diss", "taxi diss", "shared",
		},
	}
	for _, rep := range reports {
		delays := rep.DispatchDelays()
		tb.AddRow(
			rep.Algorithm,
			fmt.Sprintf("%d/%d", rep.ServedCount(), total),
			stats.F(stats.Mean(delays)),
			stats.F(stats.Percentile(delays, 95)),
			stats.F(stats.Mean(rep.PassengerDissatisfactions())),
			stats.F(stats.Mean(rep.TaxiDissatisfactions())),
			fmt.Sprintf("%d", rep.SharedRideCount()),
		)
	}
	return tb.Render(w)
}

func cityByName(name string) (trace.City, int, int, error) {
	switch strings.ToLower(name) {
	case "boston":
		return trace.Boston(), 200, 13500, nil
	case "newyork", "nyc", "new-york":
		return trace.NewYork(), 700, 46600, nil
	default:
		return trace.City{}, 0, 0, fmt.Errorf("unknown city %q (want boston or newyork)", name)
	}
}

func dispatcherByName(name string, theta float64) (sim.Dispatcher, error) {
	packCfg := share.PackConfig{Theta: theta, MaxGroupSize: 3, PairRadius: 2 * theta}
	carpoolCfg := carpool.Config{Theta: theta, MaxAdded: 2 * theta, SearchRadius: 2 * theta}
	switch strings.ToLower(name) {
	case "nstd-p":
		return dispatch.NewNSTDP(), nil
	case "nstd-t":
		return dispatch.NewNSTDT(), nil
	case "nstd-c":
		return dispatch.NewNSTDC(), nil
	case "nstd-m":
		return dispatch.NewNSTDM(), nil
	case "greedy":
		return dispatch.NewGreedy(), nil
	case "mincost":
		return dispatch.NewMinCost(), nil
	case "bottleneck":
		return dispatch.NewBottleneck(), nil
	case "std-p":
		return dispatch.NewSTDP(packCfg), nil
	case "std-t":
		return dispatch.NewSTDT(packCfg), nil
	case "raii":
		return carpool.NewRAII(carpoolCfg), nil
	case "sarp":
		return carpool.NewSARP(carpoolCfg), nil
	case "ilp":
		return carpool.NewILP(packCfg), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func printSummary(w io.Writer, rep *sim.Report, total, taxis int) error {
	delays := rep.DispatchDelays()
	pass := rep.PassengerDissatisfactions()
	taxi := rep.TaxiDissatisfactions()

	tb := stats.Table{
		Title:   fmt.Sprintf("%s over %d requests, %d taxis, %d frames", rep.Algorithm, total, taxis, rep.Frames),
		Columns: []string{"metric", "mean", "p50", "p95", "max"},
	}
	row := func(name string, xs []float64) {
		tb.AddRow(name, stats.F(stats.Mean(xs)), stats.F(stats.Percentile(xs, 50)),
			stats.F(stats.Percentile(xs, 95)), stats.F(stats.Max(xs)))
	}
	row("dispatch delay (min)", delays)
	row("passenger dissatisfaction (km)", pass)
	row("taxi dissatisfaction (km)", taxi)
	if err := tb.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  served %d/%d (%d unserved, %d abandoned), %d episodes, %d shared rides\n",
		rep.ServedCount(), total, rep.UnservedCount(), rep.AbandonedCount(), len(rep.Episodes), rep.SharedRideCount()); err != nil {
		return err
	}
	if n := rep.CancelledCount() + rep.RescuedCount() + rep.RequeueCount(); n > 0 {
		if _, err := fmt.Fprintf(w, "  faults: %d cancelled, %d rescued riders, %d re-dispatch attempts\n",
			rep.CancelledCount(), rep.RescuedCount(), rep.RequeueCount()); err != nil {
			return err
		}
	}
	return printStageTimings(w)
}

// printStageTimings renders the dispatch-pipeline stage timings via the
// frame-budget profiler's shared read path (prof.StageBreakdown, the
// same rollup behind dispatchd's /v1/report and /v1/profile). Only
// printed for single-algorithm runs: the registry is process-wide, so a
// multi-algorithm comparison would blend the algorithms' timings
// together.
func printStageTimings(w io.Writer) error {
	frame, stages := prof.StageBreakdown()
	if frame == nil && len(stages) == 0 {
		return nil
	}
	tb := stats.Table{
		Title:   "dispatch pipeline stage timings",
		Columns: []string{"stage", "calls", "total ms", "p50 ms", "p95 ms", "p99 ms"},
	}
	ms := func(sec float64) string { return stats.F(sec * 1e3) }
	add := func(name string, st prof.StageSummary) {
		tb.AddRow(name, fmt.Sprintf("%d", st.Count),
			ms(st.TotalSeconds), ms(st.P50Seconds), ms(st.P95Seconds), ms(st.P99Seconds))
	}
	if frame != nil {
		add("frame (total)", *frame)
	}
	for _, st := range stages {
		add(st.Stage, st)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	// With a budget set, the ledger's overrun accounting belongs in the
	// summary: it is the line an operator greps after a slow run.
	if ld := prof.Active(); ld != nil {
		if sum := ld.Summary(); sum.BudgetNs > 0 {
			_, err := fmt.Fprintf(w, "  frame budget %.2fms: %d overruns, %d pprof captures, %d suppressed\n",
				float64(sum.BudgetNs)/1e6, sum.Overruns, sum.Captures, sum.Suppressed)
			return err
		}
	}
	return nil
}
