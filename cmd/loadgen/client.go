package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"stabledispatch/internal/fleet"
)

// client is the loadgen's dispatchd HTTP client: one POST per request
// with bounded retries on shed responses, honouring Retry-After.
type client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

func newClient(base string, timeout time.Duration, retries int, backoff time.Duration) *client {
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &client{
		base:    base,
		hc:      &http.Client{Timeout: timeout},
		retries: retries,
		backoff: backoff,
	}
}

// sendResult is the outcome of one request's send attempt chain.
type sendResult struct {
	accepted bool
	shed     bool // final answer was 429 or 503
	draining bool // the final shed was a 503 (server draining)
	id       int
	sentAt   time.Time
	retries  int
	// admitWait is the admission wait: first POST attempt → the 201,
	// spanning every shed/backoff cycle in between. sentAt, by
	// contrast, restarts per attempt — it anchors request→assignment
	// from the accepted POST, not from the first try.
	admitWait time.Duration
}

type wireRequest struct {
	Pickup  wirePoint `json:"pickup"`
	Dropoff wirePoint `json:"dropoff"`
	Seats   int       `json:"seats"`
}

type wirePoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type wireAccepted struct {
	ID int `json:"id"`
}

// send POSTs one request, retrying shed responses (429/503) up to the
// configured budget with exponential backoff plus jitter, never below
// the server's Retry-After hint. Transport errors are retried on the
// same budget; any other HTTP status is a hard failure.
func (c *client) send(r fleet.Request, jit *jitter) sendResult {
	body, err := json.Marshal(wireRequest{
		Pickup:  wirePoint{X: r.Pickup.X, Y: r.Pickup.Y},
		Dropoff: wirePoint{X: r.Dropoff.X, Y: r.Dropoff.Y},
		Seats:   r.Seats,
	})
	if err != nil {
		return sendResult{}
	}
	res := sendResult{}
	firstAt := time.Now()
	for attempt := 0; ; attempt++ {
		res.sentAt = time.Now()
		status, retryAfter, id, err := c.post(body)
		switch {
		case err == nil && status == http.StatusCreated:
			res.accepted = true
			res.id = id
			res.admitWait = time.Since(firstAt)
			return res
		case status == http.StatusTooManyRequests, status == http.StatusServiceUnavailable:
			res.shed = true
			res.draining = status == http.StatusServiceUnavailable
		case err == nil:
			// Unexpected status: not retryable.
			return res
		}
		if attempt >= c.retries {
			return res
		}
		res.retries++
		wait := c.backoff << attempt
		wait += jit.upTo(wait / 2)
		if retryAfter > wait {
			wait = retryAfter
		}
		time.Sleep(wait)
	}
}

// post runs one POST /v1/requests exchange, returning the status code,
// the parsed Retry-After hint (0 when absent), and the accepted ID.
func (c *client) post(body []byte) (status int, retryAfter time.Duration, id int, err error) {
	resp, err := c.hc.Post(c.base+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	if resp.StatusCode == http.StatusCreated {
		var acc wireAccepted
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			return resp.StatusCode, retryAfter, 0, fmt.Errorf("decode 201 body: %w", err)
		}
		return resp.StatusCode, retryAfter, acc.ID, nil
	}
	return resp.StatusCode, retryAfter, 0, nil
}

// status reads one request's lifecycle status word ("pending",
// "assigned", "riding", "completed", "cancelled", "abandoned").
func (c *client) status(id int) (string, error) {
	resp, err := c.hc.Get(fmt.Sprintf("%s/v1/requests/%d", c.base, id))
	if err != nil {
		return "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d for request %d", resp.StatusCode, id)
	}
	var out struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Status, nil
}

// parseRetryAfter reads the integer-seconds Retry-After form (the only
// form dispatchd emits; float seconds are tolerated for other servers).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second))
	}
	return 0
}

// jitter is a per-worker random source for backoff spreading; each
// worker owns one, so no locking.
type jitter struct{ rng *rand.Rand }

func newJitter(seed int64) *jitter {
	return &jitter{rng: rand.New(rand.NewSource(seed))}
}

// upTo returns a uniform duration in [0, max).
func (j *jitter) upTo(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(j.rng.Int63n(int64(max)))
}
