package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamWatcherKindMapping pins the lifecycle-kind → outcome
// mapping against a canned SSE feed, including the events the watcher
// must skip (snapshot, heartbeats, non-terminal kinds, garbage).
func TestStreamWatcherKindMapping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("topics"); got != "events" {
			t.Errorf("topics query = %q, want events", got)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: snapshot\ndata: {}\n\n")
		fmt.Fprint(w, ": heartbeat seq=0\n\n")
		fmt.Fprint(w, "event: events\ndata: {\"kind\":\"assign\",\"requestId\":1}\n\n")
		fmt.Fprint(w, "event: events\ndata: {\"kind\":\"abandon\",\"requestId\":2}\n\n")
		fmt.Fprint(w, "event: events\ndata: {\"kind\":\"request\",\"requestId\":3}\n\n")
		fmt.Fprint(w, "event: events\ndata: {\"kind\":\"cancel\",\"requestId\":3}\n\n")
		fmt.Fprint(w, "event: events\ndata: not json\n\n")
		fmt.Fprint(w, "event: events\ndata: {\"kind\":\"dropoff\",\"requestId\":4}\n\n")
	}))
	defer srv.Close()

	w, err := newStreamWatcher(srv.URL, time.Second)
	if err != nil {
		t.Fatalf("newStreamWatcher: %v", err)
	}
	defer w.Close()

	var got []outcomeEvent
	for ev := range w.events { // handler return closes the stream
		got = append(got, ev)
	}
	want := []outcomeEvent{{1, true}, {2, false}, {4, true}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("outcomes = %+v, want %+v", got, want)
	}
}

func TestStreamWatcherUnavailable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer srv.Close()
	if w, err := newStreamWatcher(srv.URL, time.Second); err == nil {
		w.Close()
		t.Fatal("watcher connected to a daemon without /v1/stream")
	}
}

// TestReplayStreamMode runs the full replay against a stub that streams
// an assign event for every accepted POST — and proves the collector
// never polls: the status endpoint counts its callers.
func TestReplayStreamMode(t *testing.T) {
	var nextID, statusCalls atomic.Int64
	ids := make(chan int64, 256)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		id := nextID.Add(1) - 1
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]int64{"id": id, "frame": 0})
		ids <- id
	})
	mux.HandleFunc("GET /v1/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		statusCalls.Add(1)
		json.NewEncoder(w).Encode(map[string]string{"status": "assigned"})
	})
	mux.HandleFunc("GET /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: snapshot\ndata: {}\n\n")
		w.(http.Flusher).Flush()
		for {
			select {
			case id := <-ids:
				fmt.Fprintf(w, "event: events\nid: %d\ndata: {\"frame\":1,\"kind\":\"assign\",\"requestId\":%d,\"taxiId\":0}\n\n", id+1, id)
				w.(http.Flusher).Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	watcher, err := newStreamWatcher(srv.URL, time.Second)
	if err != nil {
		t.Fatalf("newStreamWatcher: %v", err)
	}
	defer watcher.Close()

	cl := newClient(srv.URL, time.Second, 0, time.Millisecond)
	cfg := fastReplayConfig()
	cfg.Stream = watcher.events
	rep := replay(cl, testRequests(20), cfg)
	if rep.Accepted != 20 || rep.Assigned != 20 {
		t.Fatalf("accepted=%d assigned=%d, want 20/20", rep.Accepted, rep.Assigned)
	}
	if rep.TimedOut != 0 {
		t.Fatalf("timedOut=%d, want 0", rep.TimedOut)
	}
	if n := statusCalls.Load(); n != 0 {
		t.Fatalf("stream mode made %d status polls, want 0", n)
	}
}

// TestCollectorResolvesEventBeforeIntake covers the race where the
// daemon assigns (and streams) an ID before the POSTing worker
// registers the watch: the early outcome must be parked and claimed.
func TestCollectorResolvesEventBeforeIntake(t *testing.T) {
	events := make(chan outcomeEvent, 2)
	events <- outcomeEvent{id: 7, assigned: true}
	events <- outcomeEvent{id: 8, assigned: false}

	var agg aggregate
	c := &collector{poll: time.Hour, drain: time.Hour, agg: &agg, stream: events}
	in := make(chan watch, 2)
	in <- watch{id: 7, sentAt: time.Now()}
	in <- watch{id: 8, sentAt: time.Now()}
	close(in)
	c.run(in) // must terminate without touching the nil client

	if agg.assigned != 1 || agg.lost != 1 || agg.timedOut != 0 {
		t.Fatalf("assigned=%d lost=%d timedOut=%d, want 1/1/0", agg.assigned, agg.lost, agg.timedOut)
	}
}

// TestCollectorFallsBackWhenStreamDies pins the mid-run fallback: a
// closed stream channel flips the collector to polling sweeps.
func TestCollectorFallsBackWhenStreamDies(t *testing.T) {
	stub := newStub(0, "")
	srv := httptest.NewServer(stub.mux)
	defer srv.Close()

	events := make(chan outcomeEvent)
	close(events) // stream dead on arrival

	var agg aggregate
	c := &collector{
		cl:     newClient(srv.URL, time.Second, 0, time.Millisecond),
		poll:   time.Millisecond,
		drain:  5 * time.Second,
		agg:    &agg,
		stream: events,
	}
	in := make(chan watch, 4)
	for i := 0; i < 3; i++ {
		in <- watch{id: i, sentAt: time.Now()}
	}
	close(in)
	c.run(in)

	if agg.assigned != 3 {
		t.Fatalf("assigned=%d after fallback, want 3", agg.assigned)
	}
	if agg.timedOut != 0 {
		t.Fatalf("timedOut=%d, want 0", agg.timedOut)
	}
}

// TestCollectorFinalSweepCoversDroppedEvents pins the drain-deadline
// safety net: a silent stream (the daemon's ring dropped our events)
// still resolves outcomes through one final poll sweep.
func TestCollectorFinalSweepCoversDroppedEvents(t *testing.T) {
	stub := newStub(0, "")
	srv := httptest.NewServer(stub.mux)
	defer srv.Close()

	events := make(chan outcomeEvent) // open but never delivers
	defer close(events)

	var agg aggregate
	c := &collector{
		cl:     newClient(srv.URL, time.Second, 0, time.Millisecond),
		poll:   time.Hour, // ticker must not fire while streaming
		drain:  50 * time.Millisecond,
		agg:    &agg,
		stream: events,
	}
	in := make(chan watch, 1)
	in <- watch{id: 1, sentAt: time.Now()}
	close(in)
	c.run(in)

	if agg.assigned != 1 || agg.timedOut != 0 {
		t.Fatalf("assigned=%d timedOut=%d, want 1/0 (final sweep)", agg.assigned, agg.timedOut)
	}
}
