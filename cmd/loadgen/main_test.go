package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

// stubDispatchd mimics the two dispatchd endpoints loadgen talks to.
// Behaviour is scripted per test through the shed counter: the first
// shedFirst POSTs answer 429, the rest 201 with sequential IDs.
type stubDispatchd struct {
	mux        *http.ServeMux
	nextID     atomic.Int64
	posts      atomic.Int64
	shedFirst  int64
	retryAfter string
	drainAll   bool
}

func newStub(shedFirst int64, retryAfter string) *stubDispatchd {
	s := &stubDispatchd{shedFirst: shedFirst, retryAfter: retryAfter}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		n := s.posts.Add(1)
		if s.drainAll {
			w.Header().Set("Retry-After", s.retryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		if n <= s.shedFirst {
			w.Header().Set("Retry-After", s.retryAfter)
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		id := s.nextID.Add(1) - 1
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]int64{"id": id, "frame": 0})
	})
	s.mux.HandleFunc("GET /v1/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"status": "assigned"})
	})
	return s
}

func testRequests(n int) []fleet.Request {
	reqs := make([]fleet.Request, n)
	for i := range reqs {
		reqs[i] = fleet.Request{
			ID:      i,
			Pickup:  geo.Point{X: 1, Y: 1},
			Dropoff: geo.Point{X: 2, Y: 2},
			Seats:   1,
		}
	}
	return reqs
}

func fastReplayConfig() replayConfig {
	return replayConfig{
		FrameInterval: time.Millisecond,
		Concurrency:   4,
		Poll:          time.Millisecond,
		Drain:         time.Second,
		Seed:          1,
	}
}

func TestReplayAllAccepted(t *testing.T) {
	stub := newStub(0, "")
	srv := httptest.NewServer(stub.mux)
	defer srv.Close()

	cl := newClient(srv.URL, time.Second, 0, time.Millisecond)
	rep := replay(cl, testRequests(20), fastReplayConfig())
	if rep.Accepted != 20 || rep.Sent != 20 {
		t.Fatalf("accepted=%d sent=%d, want 20/20", rep.Accepted, rep.Sent)
	}
	if rep.Assigned != 20 {
		t.Fatalf("assigned=%d, want 20", rep.Assigned)
	}
	if rep.ShedRate != 0 {
		t.Fatalf("shed rate %v, want 0", rep.ShedRate)
	}
	if rep.Latency == nil || rep.Latency.P99Seconds < rep.Latency.P50Seconds {
		t.Fatalf("latency summary malformed: %+v", rep.Latency)
	}
	if rep.AdmitWait == nil || rep.AdmitWait.P99Seconds < rep.AdmitWait.P50Seconds {
		t.Fatalf("admission wait summary malformed: %+v", rep.AdmitWait)
	}
	if err := rep.gate(0.5, 20); err != nil {
		t.Fatalf("gate should pass: %v", err)
	}
}

func TestRetryAfterShedThenAccept(t *testing.T) {
	// First two POSTs shed with a zero-second hint; the retry budget
	// covers them, so every request is eventually accepted.
	stub := newStub(2, "0")
	srv := httptest.NewServer(stub.mux)
	defer srv.Close()

	cl := newClient(srv.URL, time.Second, 3, time.Millisecond)
	rep := replay(cl, testRequests(5), fastReplayConfig())
	if rep.Accepted != 5 {
		t.Fatalf("accepted=%d, want 5 (sheds retried)", rep.Accepted)
	}
	if rep.Retries == 0 {
		t.Fatal("want at least one recorded retry")
	}
	if rep.Shed != 0 {
		t.Fatalf("shed=%d, want 0 after retries", rep.Shed)
	}
	// Two requests rode through a shed + backoff before their 201, so
	// the slowest admission wait must show the backoff that the slowest
	// single accepted POST (request→assignment anchor) does not.
	if rep.AdmitWait == nil {
		t.Fatal("admission wait summary missing")
	}
	if rep.AdmitWait.P99Seconds <= 0 {
		t.Fatalf("admission wait p99 = %v, want > 0 (backoff spanned)", rep.AdmitWait.P99Seconds)
	}
}

// TestAdmitWaitSpansRetries pins the admission-wait anchor: sentAt
// restarts on every attempt (request→assignment measures from the
// accepted POST), while admitWait spans the whole shed/backoff chain
// from the first attempt.
func TestAdmitWaitSpansRetries(t *testing.T) {
	stub := newStub(1, "") // first POST sheds, retry accepted
	srv := httptest.NewServer(stub.mux)
	defer srv.Close()

	backoff := 50 * time.Millisecond
	cl := newClient(srv.URL, time.Second, 1, backoff)
	res := cl.send(testRequests(1)[0], newJitter(1))
	if !res.accepted || res.retries != 1 {
		t.Fatalf("send = %+v, want accepted after one retry", res)
	}
	if res.admitWait < backoff {
		t.Fatalf("admitWait %v shorter than the backoff %v it slept", res.admitWait, backoff)
	}
	if got := time.Since(res.sentAt); got > res.admitWait {
		t.Fatalf("sentAt spans the backoff (%v > admitWait %v): per-attempt anchor broken", got, res.admitWait)
	}
}

func TestShedBudgetExhausted(t *testing.T) {
	stub := newStub(1<<30, "0") // shed everything
	srv := httptest.NewServer(stub.mux)
	defer srv.Close()

	cl := newClient(srv.URL, time.Second, 1, time.Millisecond)
	rep := replay(cl, testRequests(8), fastReplayConfig())
	if rep.Shed != 8 {
		t.Fatalf("shed=%d, want 8", rep.Shed)
	}
	if rep.ShedRate != 1 {
		t.Fatalf("shed rate %v, want 1", rep.ShedRate)
	}
	if err := rep.gate(0.5, 0); err == nil {
		t.Fatal("gate should fail at 100% shed")
	}
}

func TestDrainingSheds503(t *testing.T) {
	stub := newStub(0, "1")
	stub.drainAll = true
	srv := httptest.NewServer(stub.mux)
	defer srv.Close()

	cl := newClient(srv.URL, time.Second, 0, time.Millisecond)
	rep := replay(cl, testRequests(3), fastReplayConfig())
	if rep.DrainShed != 3 {
		t.Fatalf("drainShed=%d, want 3", rep.DrainShed)
	}
	if rep.Shed != 0 {
		t.Fatalf("shed=%d, want 0 (503s count separately)", rep.Shed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{"0", 0},
		{"2.5", 2500 * time.Millisecond},
		{"-3", 0},
		{"soon", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantile(t *testing.T) {
	lat := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(lat, 0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := quantile(lat, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestReportWriteAndGate(t *testing.T) {
	rep := &report{Schema: "loadgen/v1", Accepted: 10, Shed: 10, ShedRate: 0.5, Assigned: 4}
	var buf bytes.Buffer
	if err := rep.write("", &buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(buf.String(), `"schema": "loadgen/v1"`) {
		t.Fatalf("report JSON missing schema: %s", buf.String())
	}
	if err := rep.gate(0.5, 4); err != nil {
		t.Fatalf("boundary gate should pass: %v", err)
	}
	if err := rep.gate(0.49, 0); err == nil {
		t.Fatal("shed gate should fail")
	}
	if err := rep.gate(1, 5); err == nil {
		t.Fatal("assignment gate should fail")
	}
}
