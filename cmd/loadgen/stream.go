package main

// Outcome watching over /v1/stream. The original collector polled GET
// /v1/requests/{id} for every outstanding ID every sweep — O(outstanding)
// requests per poll interval, which at overload multipliers means the
// watcher itself becomes load. One SSE subscription to the lifecycle
// event topic replaces all of it: the daemon pushes assign/cancel/
// abandon the moment they happen, so outcome latency resolution is no
// longer bounded by the sweep interval and the daemon serves one
// connection instead of thousands of polls.
//
// Polling remains as the fallback (stream connect refused: older
// daemon, proxy stripping SSE) and as the final drain sweep — the
// stream's ring may drop events under extreme load, so IDs still
// outstanding at the drain deadline get one last poll before being
// declared timed out.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"stabledispatch/internal/stream"
)

// outcomeEvent is one lifecycle resolution pulled off the stream.
type outcomeEvent struct {
	id       int
	assigned bool // true: reached a taxi; false: cancelled/abandoned
}

// streamWatcher owns the /v1/stream subscription feeding the collector.
type streamWatcher struct {
	events chan outcomeEvent
	stop   context.CancelFunc
}

// newStreamWatcher subscribes to the daemon's lifecycle event topic.
// A refused or non-SSE response is returned as an error; the caller
// falls back to polling.
func newStreamWatcher(base string, connectTimeout time.Duration) (*streamWatcher, error) {
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/stream?topics=events", nil)
	if err != nil {
		cancel()
		return nil, err
	}
	// ResponseHeaderTimeout bounds the connect; a Client.Timeout would
	// also bound the body read, which for SSE must stay open forever.
	cl := &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: connectTimeout}}
	resp, err := cl.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("stream connect: %s: %s", resp.Status, body)
	}

	w := &streamWatcher{events: make(chan outcomeEvent, 1024), stop: cancel}
	go w.read(resp.Body)
	return w, nil
}

// read parses the SSE feed into outcome events until the stream closes;
// the channel close is the collector's fall-back-to-polling signal.
func (w *streamWatcher) read(body io.ReadCloser) {
	defer body.Close()
	defer close(w.events)
	r := stream.NewReader(body)
	for {
		ev, err := r.ReadEvent()
		if err != nil {
			return
		}
		if ev.Name != "events" {
			continue // snapshot, heartbeats
		}
		var e struct {
			Kind      string `json:"kind"`
			RequestID int    `json:"requestId"`
		}
		if err := json.Unmarshal(ev.Data, &e); err != nil || e.RequestID < 0 {
			continue
		}
		switch e.Kind {
		// assign is the signal; pickup/dropoff cover an assign the
		// ring dropped under burst.
		case "assign", "pickup", "dropoff":
			w.events <- outcomeEvent{id: e.RequestID, assigned: true}
		// abandon is final; cancel is NOT — a breakdown revocation
		// emits cancel then requeue, and the request may still be
		// assigned. Unrequeued cancels resolve in the drain sweep.
		case "abandon":
			w.events <- outcomeEvent{id: e.RequestID, assigned: false}
		}
	}
}

// Close tears the subscription down; the reader goroutine closes the
// events channel on its way out.
func (w *streamWatcher) Close() {
	if w != nil {
		w.stop()
	}
}
