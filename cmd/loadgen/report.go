package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// report is the end-of-run summary, written as JSON (schema
// "loadgen/v1") and gated for CI.
type report struct {
	Schema      string  `json:"schema"`
	City        string  `json:"city"`
	Frames      int     `json:"frames"`
	Multiplier  float64 `json:"multiplier"`
	DailyVolume int     `json:"dailyVolume"`

	// OutcomeSource records how assignments were observed: "stream"
	// (one /v1/stream subscription) or "poll" (per-ID status sweeps).
	OutcomeSource string `json:"outcomeSource,omitempty"`

	DurationSeconds float64 `json:"durationSeconds"`
	Sent            int     `json:"sent"`
	Accepted        int     `json:"accepted"`
	// Shed counts requests whose final answer was 429 after retries.
	Shed int `json:"shed"`
	// DrainShed counts final 503s: the server was shutting down.
	DrainShed int `json:"drainShed"`
	Errors    int `json:"errors"`
	Retries   int `json:"retries"`

	// Assigned counts accepted requests observed reaching a taxi;
	// Lost were cancelled or abandoned; TimedOut were still pending
	// when the drain window closed.
	Assigned int `json:"assigned"`
	Lost     int `json:"lost"`
	TimedOut int `json:"timedOut"`

	SustainedQPS float64 `json:"sustainedQps"`
	// ShedRate is shed/(shed+accepted) — the admission front door's
	// rejection fraction, the quantity the -max-shed-rate gate bounds.
	ShedRate float64     `json:"shedRate"`
	Latency  *latencyOut `json:"requestToAssignment,omitempty"`
	// AdmitWait is the admission wait: first POST attempt → accepted
	// 201, including every shed/backoff cycle. Against Latency it
	// separates "the front door was slow to let me in" from "dispatch
	// was slow to match me".
	AdmitWait *latencyOut `json:"requestToAccepted,omitempty"`
}

// latencyOut is the client-observed enqueue→assignment latency summary.
// In stream mode resolution is event-level; in poll fallback it is
// bounded below by the -poll sweep interval.
type latencyOut struct {
	P50Seconds float64 `json:"p50Seconds"`
	P95Seconds float64 `json:"p95Seconds"`
	P99Seconds float64 `json:"p99Seconds"`
}

// write emits the report to path, or to stdout when path is empty.
func (r *report) write(path string, stdout io.Writer) error {
	out := stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// gate applies the CI thresholds, returning a descriptive error when
// the run fails one.
func (r *report) gate(maxShedRate float64, minAssigned int) error {
	if r.ShedRate > maxShedRate {
		return fmt.Errorf("gate failed: shed rate %.3f exceeds %.3f (accepted=%d shed=%d)",
			r.ShedRate, maxShedRate, r.Accepted, r.Shed)
	}
	if r.Assigned < minAssigned {
		return fmt.Errorf("gate failed: %d requests assigned, need at least %d", r.Assigned, minAssigned)
	}
	return nil
}
