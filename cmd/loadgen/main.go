// Command loadgen replays a synthetic passenger trace against a live
// dispatchd over HTTP, at a configurable multiple of the calibrated
// demand, and reports what the front door did with it: sustained QPS,
// shed rate, and request→assignment latency quantiles.
//
//	dispatchd -auto 100ms &
//	loadgen -addr http://localhost:8080 -city boston -frames 30 -mult 10
//
// Each generated request is POSTed in trace order with a per-request
// timeout; 429/503 responses are retried with exponential backoff and
// jitter, honouring the server's Retry-After hint. Accepted requests
// are watched through a single GET /v1/stream subscription to the
// lifecycle event topic (falling back to per-request polling of
// GET /v1/requests/{id} when the stream is unavailable) until they are
// assigned or reach a terminal state. The end-of-run JSON report (schema
// "loadgen/v1") is written to -out (stdout by default), and the
// -max-shed-rate / -min-assigned gates turn the report into a CI
// verdict: the process exits nonzero when a gate fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "http://localhost:8080", "dispatchd base URL")
		cityName   = fs.String("city", "boston", "city model: boston or newyork")
		frames     = fs.Int("frames", 30, "trace horizon in frames (minutes)")
		volume     = fs.Int("volume", 0, "daily request volume before scaling (0 = the city's calibrated volume)")
		mult       = fs.Float64("mult", 1, "demand multiplier: scales the daily volume to model overload")
		seed       = fs.Int64("seed", 42, "trace generation seed")
		seats      = fs.Int("seats", 3, "max party size (1..6; parties decay geometrically)")
		frameEvery = fs.Duration("frame-interval", 100*time.Millisecond, "wall-clock pacing per trace frame")
		timeout    = fs.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
		retries    = fs.Int("retries", 3, "max retries per shed (429/503) response")
		backoff    = fs.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, jittered, floored by Retry-After)")
		conc       = fs.Int("concurrency", 64, "max concurrent in-flight POSTs")
		poll       = fs.Duration("poll", 200*time.Millisecond, "outcome poll sweep interval (fallback mode)")
		useStream  = fs.Bool("stream", true, "watch outcomes via one /v1/stream subscription instead of polling")
		drain      = fs.Duration("drain", 30*time.Second, "max wait for outstanding outcomes after the last send")
		out        = fs.String("out", "", "report JSON path (empty = stdout)")
		maxShed    = fs.Float64("max-shed-rate", 1, "gate: fail when shed/(shed+accepted) exceeds this fraction")
		minAssign  = fs.Int("min-assigned", 0, "gate: fail when fewer requests reach assignment")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var city trace.City
	switch *cityName {
	case "boston":
		city = trace.Boston()
	case "newyork":
		city = trace.NewYork()
	default:
		return fmt.Errorf("unknown city %q", *cityName)
	}
	daily := *volume
	if daily <= 0 {
		if city.Name == "newyork" {
			daily = trace.NewYorkConfig(*frames, *seed).RequestsPerDay
		} else {
			daily = trace.BostonConfig(*frames, *seed).RequestsPerDay
		}
	}
	scaled := int(float64(daily) * *mult)
	if scaled <= 0 {
		return fmt.Errorf("scaled volume %d is not positive (volume=%d mult=%g)", scaled, daily, *mult)
	}
	reqs, err := trace.Generate(trace.Config{
		City:           city,
		Frames:         *frames,
		RequestsPerDay: scaled,
		Seats:          *seats,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}
	if *conc <= 0 {
		*conc = 1
	}

	cl := newClient(*addr, *timeout, *retries, *backoff)
	cfg := replayConfig{
		FrameInterval: *frameEvery,
		Concurrency:   *conc,
		Poll:          *poll,
		Drain:         *drain,
		Seed:          *seed,
	}
	source := "poll"
	if *useStream {
		if w, werr := newStreamWatcher(*addr, *timeout); werr != nil {
			fmt.Fprintf(os.Stderr, "loadgen: stream watch unavailable (%v); falling back to polling\n", werr)
		} else {
			defer w.Close()
			cfg.Stream = w.events
			source = "stream"
		}
	}
	rep := replay(cl, reqs, cfg)
	rep.OutcomeSource = source
	rep.City = city.Name
	rep.Frames = *frames
	rep.Multiplier = *mult
	rep.DailyVolume = scaled

	if err := rep.write(*out, stdout); err != nil {
		return err
	}
	return rep.gate(*maxShed, *minAssign)
}

// replayConfig carries the pacing and watching knobs of one replay run.
type replayConfig struct {
	FrameInterval time.Duration
	Concurrency   int
	Poll          time.Duration
	Drain         time.Duration
	Seed          int64
	// Stream, when non-nil, feeds lifecycle outcomes from a
	// /v1/stream subscription; the collector only falls back to
	// polling if it closes mid-run.
	Stream <-chan outcomeEvent
}

// replay drives the request trace through the client: a pacer releases
// each frame's burst on the frame interval, a worker pool POSTs with
// bounded concurrency, and a collector sweeps accepted IDs until they
// are assigned or terminal (or the drain deadline passes).
func replay(cl *client, reqs []fleet.Request, cfg replayConfig) *report {
	var (
		agg     aggregate
		work    = make(chan fleet.Request)
		watched = make(chan watch, 4096)
		wgSend  sync.WaitGroup
		wgWatch sync.WaitGroup
	)
	start := time.Now()

	collector := &collector{cl: cl, poll: cfg.Poll, drain: cfg.Drain, agg: &agg, stream: cfg.Stream}
	wgWatch.Add(1)
	go func() {
		defer wgWatch.Done()
		collector.run(watched)
	}()

	for w := 0; w < cfg.Concurrency; w++ {
		wgSend.Add(1)
		go func(worker int) {
			defer wgSend.Done()
			jit := newJitter(cfg.Seed + int64(worker))
			for r := range work {
				res := cl.send(r, jit)
				agg.note(res)
				if res.accepted {
					watched <- watch{id: res.id, sentAt: res.sentAt}
				}
			}
		}(w)
	}

	// Pacer: requests are frame-stamped by the generator; release each
	// frame's burst, then sleep the frame interval.
	frame := 0
	for _, r := range reqs {
		for frame < r.Frame {
			time.Sleep(cfg.FrameInterval)
			frame++
		}
		work <- r
	}
	close(work)
	wgSend.Wait()
	close(watched)
	wgWatch.Wait()

	rep := agg.report(time.Since(start))
	rep.Sent = len(reqs)
	return rep
}

// watch is one accepted request awaiting an outcome.
type watch struct {
	id     int
	sentAt time.Time
}

// collector resolves outstanding accepted requests to outcomes. With a
// stream it is event-driven: one SSE subscription pushes assignments as
// they happen, so no per-ID polling at all. Without one — or after the
// stream dies mid-run — it falls back to sweeping GET /v1/requests/{id}
// on the poll interval. Once the input channel closes (all sends
// finished) it keeps collecting until the drain window runs out, with
// one final poll sweep to cover any events the daemon's ring dropped.
type collector struct {
	cl     *client
	poll   time.Duration
	drain  time.Duration
	agg    *aggregate
	stream <-chan outcomeEvent
}

func (c *collector) run(in <-chan watch) {
	outstanding := map[int]time.Time{}
	// Stream outcomes can race ahead of the worker's intake: the
	// daemon may assign (and stream the event for) an ID before the
	// POSTing goroutine registers it here. Park those and claim them
	// when the watch arrives.
	early := map[int]bool{}
	done := map[int]struct{}{}
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	var drainC <-chan time.Time
	for {
		if in == nil && len(outstanding) == 0 {
			return
		}
		select {
		case w, ok := <-in:
			if !ok {
				in = nil
				t := time.NewTimer(c.drain)
				defer t.Stop()
				drainC = t.C
				continue
			}
			if assigned, seen := early[w.id]; seen {
				delete(early, w.id)
				done[w.id] = struct{}{}
				c.resolve(assigned, w.sentAt)
				continue
			}
			outstanding[w.id] = w.sentAt
		case ev, ok := <-c.stream:
			if !ok {
				// Stream died mid-run: a nil channel never
				// selects, and the ticker sweeps take over.
				c.stream = nil
				continue
			}
			if _, dup := done[ev.id]; dup {
				continue // pickup/dropoff after the resolving assign
			}
			if sentAt, seen := outstanding[ev.id]; seen {
				delete(outstanding, ev.id)
				done[ev.id] = struct{}{}
				c.resolve(ev.assigned, sentAt)
			} else if _, seen := early[ev.id]; !seen {
				early[ev.id] = ev.assigned
			}
		case <-ticker.C:
			if c.stream == nil {
				c.sweep(outstanding)
			}
		case <-drainC:
			// The daemon's ring may have dropped events under
			// burst; one last sweep before declaring timeouts.
			c.sweep(outstanding)
			c.agg.noteTimedOut(len(outstanding))
			return
		}
	}
}

func (c *collector) resolve(assigned bool, sentAt time.Time) {
	if assigned {
		c.agg.noteAssigned(time.Since(sentAt))
	} else {
		c.agg.noteLost()
	}
}

// sweep is the polling path: one status GET per outstanding ID.
func (c *collector) sweep(outstanding map[int]time.Time) {
	for id, sentAt := range outstanding {
		st, err := c.cl.status(id)
		if err != nil {
			continue // transient read failure: keep the ID for the next sweep
		}
		switch st {
		case "assigned", "riding", "completed":
			c.agg.noteAssigned(time.Since(sentAt))
			delete(outstanding, id)
		case "cancelled", "abandoned":
			c.agg.noteLost()
			delete(outstanding, id)
		}
	}
}

// aggregate is the thread-safe run tally the report is built from.
type aggregate struct {
	mu         sync.Mutex
	accepted   int
	shed       int
	drainShed  int
	errors     int
	retries    int
	assigned   int
	lost       int
	timedOut   int
	latencies  []float64 // seconds, enqueue → observed assignment
	admitWaits []float64 // seconds, first POST attempt → accepted
}

func (a *aggregate) note(r sendResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.retries += r.retries
	switch {
	case r.accepted:
		a.accepted++
		a.admitWaits = append(a.admitWaits, r.admitWait.Seconds())
	case r.shed && r.draining:
		a.drainShed++
	case r.shed:
		a.shed++
	default:
		a.errors++
	}
}

func (a *aggregate) noteAssigned(d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.assigned++
	a.latencies = append(a.latencies, d.Seconds())
}

func (a *aggregate) noteLost() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lost++
}

func (a *aggregate) noteTimedOut(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.timedOut += n
}

func (a *aggregate) report(elapsed time.Duration) *report {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := &report{
		Schema:          "loadgen/v1",
		DurationSeconds: elapsed.Seconds(),
		Accepted:        a.accepted,
		Shed:            a.shed,
		DrainShed:       a.drainShed,
		Errors:          a.errors,
		Retries:         a.retries,
		Assigned:        a.assigned,
		Lost:            a.lost,
		TimedOut:        a.timedOut,
	}
	if elapsed > 0 {
		rep.SustainedQPS = float64(a.accepted) / elapsed.Seconds()
	}
	if total := a.accepted + a.shed; total > 0 {
		rep.ShedRate = float64(a.shed) / float64(total)
	}
	if len(a.latencies) > 0 {
		lat := append([]float64(nil), a.latencies...)
		sort.Float64s(lat)
		rep.Latency = &latencyOut{
			P50Seconds: quantile(lat, 0.50),
			P95Seconds: quantile(lat, 0.95),
			P99Seconds: quantile(lat, 0.99),
		}
	}
	if len(a.admitWaits) > 0 {
		aw := append([]float64(nil), a.admitWaits...)
		sort.Float64s(aw)
		rep.AdmitWait = &latencyOut{
			P50Seconds: quantile(aw, 0.50),
			P95Seconds: quantile(aw, 0.95),
			P99Seconds: quantile(aw, 0.99),
		}
	}
	return rep
}

// quantile reads the q-quantile from an ascending-sorted sample set.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
