package main

import (
	"flag"
	"fmt"
	"io"
	"sort"

	"stabledispatch/internal/stats"
)

// benchSchema versions the benchmark file format; bump on any field
// change so a gate never silently compares incompatible runs.
// v2: per-stage ns/frame attribution on every cell, plus the serve/
// family with admission funnel counts.
const benchSchema = "stabledispatch-bench-2"

// benchFile is the machine-readable output of one perfbench run.
type benchFile struct {
	Schema    string           `json:"schema"`
	Go        string           `json:"go"`
	Scenarios []scenarioResult `json:"scenarios"`
}

// scenarioResult is one matrix cell's measurements, averaged over
// replicas (Seed is the base seed; replica r runs at Seed + r*100003).
type scenarioResult struct {
	Name     string `json:"name"`
	Algo     string `json:"algo"`
	Scale    string `json:"scale"`
	Seed     int64  `json:"seed"`
	Replicas int    `json:"replicas"`

	Frames   int `json:"frames"`
	Requests int `json:"requests"`
	Taxis    int `json:"taxis"`

	// Runtime cost.
	NsPerFrame     float64 `json:"nsPerFrame"`
	AllocsPerFrame float64 `json:"allocsPerFrame"`
	RingBytes      int     `json:"ringBytes"`

	// StageNsPerFrame attributes the frame cost to pipeline stages
	// (average ns/frame by stage), measured by the frame-budget
	// profiler's ledger.
	StageNsPerFrame map[string]float64 `json:"stageNsPerFrame,omitempty"`

	// Admission funnel counts (serve/ family only).
	Accepted int `json:"accepted,omitempty"`
	Shed     int `json:"shed,omitempty"`

	// End-of-run KPIs (the paper's quality metrics).
	KPIs kpiResult `json:"kpis"`
}

type kpiResult struct {
	Served       float64 `json:"served"`
	Expired      float64 `json:"expired"`
	SharedRides  float64 `json:"sharedRides"`
	DelayMean    float64 `json:"delayMean"`
	DelayP95     float64 `json:"delayP95"`
	PassDissMean float64 `json:"passDissMean"`
	TaxiDissMean float64 `json:"taxiDissMean"`
}

// thresholds are the fractional regression budgets per metric class.
type thresholds struct {
	// Ns bounds ns/frame growth (wall clock is the noisiest metric, so
	// its default budget is the widest).
	Ns float64
	// Alloc bounds allocs/frame and ring-bytes growth.
	Alloc float64
	// KPI bounds quality-metric movement (delay up, served down, …).
	KPI float64
}

func defaultThresholds() thresholds {
	return thresholds{Ns: 0.5, Alloc: 0.2, KPI: 0.1}
}

// stageNsGateFloor is the per-stage ns/frame below which a stage is
// too cheap to time reliably and is excluded from the gate.
const stageNsGateFloor = 2000.0

// metric describes one compared quantity: how to read it from a
// scenario and which direction is a regression.
type metric struct {
	name       string
	get        func(scenarioResult) float64
	higherBad  bool
	thresholdF func(thresholds) float64
}

// metrics is the fixed comparison set. Quality metrics where "more" is
// fine (shared rides) or that mirror another (expired vs served) are
// deliberately absent: the gate is for regressions, not for change
// detection.
var metrics = []metric{
	{"ns_per_frame", func(s scenarioResult) float64 { return s.NsPerFrame }, true, func(t thresholds) float64 { return t.Ns }},
	{"allocs_per_frame", func(s scenarioResult) float64 { return s.AllocsPerFrame }, true, func(t thresholds) float64 { return t.Alloc }},
	{"ring_bytes", func(s scenarioResult) float64 { return float64(s.RingBytes) }, true, func(t thresholds) float64 { return t.Alloc }},
	{"served", func(s scenarioResult) float64 { return s.KPIs.Served }, false, func(t thresholds) float64 { return t.KPI }},
	{"delay_mean", func(s scenarioResult) float64 { return s.KPIs.DelayMean }, true, func(t thresholds) float64 { return t.KPI }},
	{"delay_p95", func(s scenarioResult) float64 { return s.KPIs.DelayP95 }, true, func(t thresholds) float64 { return t.KPI }},
	{"pass_diss_mean", func(s scenarioResult) float64 { return s.KPIs.PassDissMean }, true, func(t thresholds) float64 { return t.KPI }},
	{"taxi_diss_mean", func(s scenarioResult) float64 { return s.KPIs.TaxiDissMean }, true, func(t thresholds) float64 { return t.KPI }},
	// Shed is deterministic (in-process admission over a seeded
	// workload), so more shedding means the serve path got slower at
	// draining its queue or the workload shifted — either is a
	// regression. Accepted mirrors it and is deliberately absent.
	{"shed", func(s scenarioResult) float64 { return float64(s.Shed) }, true, func(t thresholds) float64 { return t.KPI }},
}

// delta is one (scenario, metric) comparison against the baseline.
type delta struct {
	Scenario  string
	Metric    string
	Base, New float64
	// Frac is the signed change in the regression direction: positive
	// means worse, with 1.0 = 100% worse.
	Frac      float64
	Threshold float64
	Regressed bool
}

// compare diffs the current run against a baseline, scenario-by-
// scenario. Scenarios present on only one side are skipped: the gate
// compares like with like (a quick-only PR run against a full baseline
// gates just the quick rows).
func compare(cur, base benchFile, th thresholds) []delta {
	baseByName := make(map[string]scenarioResult, len(base.Scenarios))
	for _, s := range base.Scenarios {
		baseByName[s.Name] = s
	}
	var out []delta
	for _, s := range cur.Scenarios {
		b, ok := baseByName[s.Name]
		if !ok {
			continue
		}
		for _, m := range metrics {
			oldV, newV := m.get(b), m.get(s)
			d := delta{
				Scenario:  s.Name,
				Metric:    m.name,
				Base:      oldV,
				New:       newV,
				Frac:      worseFrac(oldV, newV, m.higherBad),
				Threshold: m.thresholdF(th),
			}
			d.Regressed = d.Frac > d.Threshold
			out = append(out, d)
		}
		// Per-stage ns/frame rows are dynamic: compare every stage
		// present on both sides (same like-with-like rule as scenarios),
		// under the wall-clock budget since stage time is wall time.
		for _, stage := range commonStages(b.StageNsPerFrame, s.StageNsPerFrame) {
			oldV, newV := b.StageNsPerFrame[stage], s.StageNsPerFrame[stage]
			// Sub-floor stages (commit at quick scale averages a few
			// hundred ns) are pure timer noise: a scheduler hiccup can
			// move them 10x run to run. Gate a stage only once either
			// side spends real time in it.
			if oldV < stageNsGateFloor && newV < stageNsGateFloor {
				continue
			}
			d := delta{
				Scenario:  s.Name,
				Metric:    "stage_ns/" + stage,
				Base:      oldV,
				New:       newV,
				Frac:      worseFrac(oldV, newV, true),
				Threshold: th.Ns,
			}
			d.Regressed = d.Frac > d.Threshold
			out = append(out, d)
		}
	}
	return out
}

// commonStages returns the stage names present in both maps, sorted for
// a stable delta table.
func commonStages(a, b map[string]float64) []string {
	var out []string
	for k := range a {
		if _, ok := b[k]; ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// worseFrac is the fractional movement in the bad direction. A zero
// baseline cannot anchor a ratio: any appearance from zero counts as a
// 100% regression (so e.g. delay_mean going 0 → 3 trips a 10% budget),
// and zero-to-zero is no change.
func worseFrac(base, cur float64, higherBad bool) float64 {
	if !higherBad {
		base, cur = -base, -cur
	}
	diff := cur - base
	switch {
	case diff == 0:
		return 0
	case base == 0:
		if diff > 0 {
			return 1
		}
		return -1
	}
	f := diff / base
	if base < 0 {
		f = -f
	}
	return f
}

func regressionCount(ds []delta) int {
	n := 0
	for _, d := range ds {
		if d.Regressed {
			n++
		}
	}
	return n
}

// printDeltas renders the comparison table, regression rows flagged.
func printDeltas(w io.Writer, ds []delta) error {
	if len(ds) == 0 {
		_, err := fmt.Fprintln(w, "no overlapping scenarios to compare")
		return err
	}
	tb := stats.Table{
		Title:   "perfbench deltas vs baseline (+ = worse)",
		Columns: []string{"scenario", "metric", "base", "new", "delta", "budget", ""},
	}
	for _, d := range ds {
		mark := ""
		if d.Regressed {
			mark = "REGRESSED"
		}
		tb.AddRow(d.Scenario, d.Metric,
			stats.F(d.Base), stats.F(d.New),
			fmt.Sprintf("%+.1f%%", d.Frac*100),
			fmt.Sprintf("%.0f%%", d.Threshold*100),
			mark)
	}
	return tb.Render(w)
}

// config is the parsed flag set.
type config struct {
	quick        bool
	replicas     int
	outPath      string
	baselinePath string
	th           thresholds
	ov           overrides
}

func parseFlags(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("perfbench", flag.ContinueOnError)
	fs.BoolVar(&cfg.quick, "quick", false, "run only the quick-scale scenarios (the CI configuration)")
	fs.IntVar(&cfg.replicas, "replicas", 1, "replicas per scenario, averaged (derived seeds)")
	fs.StringVar(&cfg.outPath, "out", "", "write the benchmark JSON to this file")
	fs.StringVar(&cfg.baselinePath, "baseline", "", "compare against this benchmark file and fail on regression")
	def := defaultThresholds()
	fs.Float64Var(&cfg.th.Ns, "max-ns-regress", def.Ns, "allowed fractional ns/frame growth before failing")
	fs.Float64Var(&cfg.th.Alloc, "max-alloc-regress", def.Alloc, "allowed fractional allocs/frame and ring-bytes growth")
	fs.Float64Var(&cfg.th.KPI, "max-kpi-regress", def.KPI, "allowed fractional KPI degradation (delay up, served down)")
	fs.IntVar(&cfg.ov.frames, "frames", 0, "override every scenario's frame horizon (0 = scenario default)")
	fs.Float64Var(&cfg.ov.volScale, "vol-scale", 0, "override every scenario's volume scale (0 = scenario default)")
	fs.Float64Var(&cfg.ov.taxiScale, "taxi-scale", 0, "override every scenario's taxi scale (0 = scenario default)")
	fs.Int64Var(&cfg.ov.seed, "seed", 0, "override the base seed (0 = scenario default)")
	fs.IntVar(&cfg.ov.workers, "workers", 0, "cost-plane worker pool size per frame (0 = GOMAXPROCS; results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.th.Ns <= 0 || cfg.th.Alloc <= 0 || cfg.th.KPI <= 0 {
		return cfg, fmt.Errorf("regression thresholds must be positive")
	}
	return cfg, nil
}
