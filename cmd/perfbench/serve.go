package main

// The serve/ scenario family benchmarks the daemon's serve path rather
// than the bare simulator: each cell replays a generated workload
// through an in-process admission controller (the loadgen → dispatchd
// ingest contract) and advances frames the way dispatchd's tick loop
// does — drain the admitted batch, inject, step. A frame-budget
// profiler ledger runs underneath, so every cell also reports where the
// frame time went stage by stage.

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"time"

	"stabledispatch/internal/admission"
	"stabledispatch/internal/exp"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/prof"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/trace"
	"stabledispatch/internal/tseries"
)

// serveScenario is one cell of the serve/ family.
type serveScenario struct {
	name string
	algo string
	opts exp.Options
	// queueCap bounds the admission intake queue (0 = package default);
	// the overload cell sets it tight so shedding cost is on the books.
	queueCap int
}

// serveMatrix is the serve/ family: always quick scale, in both quick
// and full runs — the family pins the serve path's shape, not
// paper-scale wall clock.
func serveMatrix(ov overrides) []serveScenario {
	o := ov.apply(exp.QuickOptions())
	return []serveScenario{
		{name: "serve/nstd-p", algo: "nstd-p", opts: o},
		{name: "serve/greedy", algo: "greedy", opts: o},
		{name: "serve/nstd-p-overload", algo: "nstd-p", opts: o, queueCap: 1},
	}
}

// serveSink settles the admission in-flight ledger from simulator
// lifecycle events, mirroring dispatchd's wiring.
func serveSink(c *admission.Controller) sim.EventSink {
	return sim.EventSinkFunc(func(e sim.Event) {
		switch e.Kind {
		case sim.EventAssign:
			c.NoteAssigned(e.RequestID)
		case sim.EventDropoff, sim.EventAbandon, sim.EventCancel:
			c.NoteTerminal(e.RequestID)
		case sim.EventRequeue, sim.EventRescue:
			c.NoteRequeued(e.RequestID)
		}
	})
}

// stageNsPerFrame projects the ledger's cumulative stage costs into
// average ns/frame, the unit the bench file gates on.
func stageNsPerFrame(sum prof.Summary) map[string]float64 {
	if sum.Frames == 0 || len(sum.Stages) == 0 {
		return nil
	}
	out := make(map[string]float64, len(sum.Stages))
	for _, st := range sum.Stages {
		out[st.Stage] = float64(st.Ns) / float64(sum.Frames)
	}
	return out
}

// runServeScenario replays one serve/ cell, averaging over replicas
// with the same derived-seed stride as runScenario.
func runServeScenario(sc serveScenario, replicas int, progress io.Writer) (scenarioResult, error) {
	if replicas < 1 {
		replicas = 1
	}
	// Serve cells run at quick scale, so uncollected for the same
	// reason quick sim cells do (see runScenario).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	defer runtime.GC()
	ld := prof.Configure(prof.Config{TopN: 4})
	defer prof.Disable()
	res := scenarioResult{
		Name:     sc.name,
		Algo:     sc.algo,
		Scale:    "serve",
		Seed:     sc.opts.Seed,
		Replicas: replicas,
	}
	for r := 0; r < replicas; r++ {
		o := sc.opts
		o.Seed += int64(r) * 100003
		reqs, taxis, err := exp.Workload(trace.Boston(), 13500, 200, o)
		if err != nil {
			return res, err
		}
		if len(reqs) == 0 {
			return res, fmt.Errorf("%s: workload generated no requests", sc.name)
		}
		d, err := perfDispatcher(sc.algo, o.Theta)
		if err != nil {
			return res, err
		}
		adm := admission.New(admission.Config{QueueCap: sc.queueCap})
		rec := tseries.New(tseries.Config{Capacity: 4*o.Frames + 64})
		s, err := sim.New(sim.Config{
			Params:         o.Params,
			Dispatcher:     d,
			PatienceFrames: o.PatienceMinutes,
			KPI:            rec,
			Workers:        o.Workers,
			Events:         serveSink(adm),
		}, taxis, nil)
		if err != nil {
			return res, err
		}
		// Requests arrive by issue frame, exactly as loadgen would POST
		// them against the daemon's clock.
		byFrame := make(map[int][]fleet.Request)
		maxFrame := 0
		for _, q := range reqs {
			byFrame[q.Frame] = append(byFrame[q.Frame], q)
			if q.Frame > maxFrame {
				maxFrame = q.Frame
			}
		}
		accepted, shed, frames := 0, 0, 0
		limit := 4*o.Frames + 64
		start := time.Now()
		for frame := 0; frame < limit; frame++ {
			for _, q := range byFrame[frame] {
				if _, err := adm.Admit(q); err != nil {
					shed++
				} else {
					accepted++
				}
			}
			// dispatchd's stepLocked: drain the admitted batch in order,
			// stamp the current frame, inject, then advance.
			for _, q := range adm.TakeBatch() {
				q.Frame = s.Frame()
				if err := s.Inject(q); err != nil {
					adm.NoteInjectFailure(q.ID)
				}
			}
			if err := s.Step(); err != nil {
				return res, err
			}
			frames++
			if frame >= maxFrame {
				c := s.Counts()
				if c.Pending == 0 && c.Active == 0 && adm.QueueDepth() == 0 {
					break
				}
			}
		}
		wall := time.Since(start)
		samples := rec.Snapshot()
		if len(samples) == 0 {
			return res, fmt.Errorf("%s: no KPI samples recorded", sc.name)
		}
		var allocs float64
		for _, smp := range samples {
			allocs += float64(smp.Allocs)
		}
		last := samples[len(samples)-1]
		res.Frames += frames
		res.Requests += len(reqs)
		res.Taxis = len(taxis)
		res.Accepted += accepted
		res.Shed += shed
		res.NsPerFrame += float64(wall.Nanoseconds()) / float64(frames)
		res.AllocsPerFrame += allocs / float64(len(samples))
		res.RingBytes = rec.MemoryBytes()
		res.KPIs.Served += float64(last.Served)
		res.KPIs.Expired += float64(last.Expired)
		res.KPIs.SharedRides += float64(last.SharedRides)
		res.KPIs.DelayMean += last.DelayMean
		res.KPIs.DelayP95 += last.DelayP95
		res.KPIs.PassDissMean += last.PassDissMean
		res.KPIs.TaxiDissMean += last.TaxiDissMean
	}
	n := float64(replicas)
	res.Frames /= replicas
	res.Requests /= replicas
	res.Accepted /= replicas
	res.Shed /= replicas
	res.NsPerFrame /= n
	res.AllocsPerFrame /= n
	res.KPIs.Served /= n
	res.KPIs.Expired /= n
	res.KPIs.SharedRides /= n
	res.KPIs.DelayMean /= n
	res.KPIs.DelayP95 /= n
	res.KPIs.PassDissMean /= n
	res.KPIs.TaxiDissMean /= n
	res.StageNsPerFrame = stageNsPerFrame(ld.Summary())
	if progress != nil {
		fmt.Fprintf(progress, "perfbench: %-20s %6d frames  %8.2f ms/frame  accepted %d  shed %d\n",
			sc.name, res.Frames, res.NsPerFrame/1e6, res.Accepted, res.Shed)
	}
	return res, nil
}
