package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleResult(name string) scenarioResult {
	return scenarioResult{
		Name: name, Algo: "nstd-p", Scale: "quick",
		Seed: 42, Replicas: 1,
		Frames: 120, Requests: 100, Taxis: 20,
		NsPerFrame: 1e6, AllocsPerFrame: 5000, RingBytes: 1 << 16,
		StageNsPerFrame: map[string]float64{"matching": 6e5, "cost_plane": 2e5},
		KPIs: kpiResult{
			Served: 90, DelayMean: 2, DelayP95: 6,
			PassDissMean: 1.5, TaxiDissMean: 2.5,
		},
	}
}

func sampleFile(names ...string) benchFile {
	f := benchFile{Schema: benchSchema, Go: "go1.22"}
	for _, n := range names {
		f.Scenarios = append(f.Scenarios, sampleResult(n))
	}
	return f
}

// TestCompareDetectsInjectedRegression gates the gate: a synthetic
// slowdown past the budget must be flagged, one inside it must not.
func TestCompareDetectsInjectedRegression(t *testing.T) {
	base := sampleFile("quick/nstd-p")
	th := defaultThresholds()

	identical := compare(base, base, th)
	if n := regressionCount(identical); n != 0 {
		t.Fatalf("identical runs report %d regressions", n)
	}

	slow := sampleFile("quick/nstd-p")
	slow.Scenarios[0].NsPerFrame = base.Scenarios[0].NsPerFrame * (1 + th.Ns + 0.1)
	ds := compare(slow, base, th)
	if n := regressionCount(ds); n != 1 {
		t.Fatalf("injected ns/frame regression: %d flagged, want 1", n)
	}
	for _, d := range ds {
		if d.Regressed && d.Metric != "ns_per_frame" {
			t.Errorf("wrong metric flagged: %s", d.Metric)
		}
	}

	within := sampleFile("quick/nstd-p")
	within.Scenarios[0].NsPerFrame = base.Scenarios[0].NsPerFrame * (1 + th.Ns/2)
	if n := regressionCount(compare(within, base, th)); n != 0 {
		t.Errorf("within-budget slowdown flagged (%d regressions)", n)
	}

	// Served is lower-is-worse: a drop past the KPI budget regresses, a
	// rise never does.
	dropped := sampleFile("quick/nstd-p")
	dropped.Scenarios[0].KPIs.Served = base.Scenarios[0].KPIs.Served * (1 - th.KPI - 0.05)
	if n := regressionCount(compare(dropped, base, th)); n != 1 {
		t.Errorf("served drop: %d regressions, want 1", n)
	}
	rose := sampleFile("quick/nstd-p")
	rose.Scenarios[0].KPIs.Served = base.Scenarios[0].KPIs.Served * 2
	if n := regressionCount(compare(rose, base, th)); n != 0 {
		t.Errorf("served rise flagged as regression")
	}
}

// TestCompareSkipsUnmatchedScenarios keeps a quick-only run comparable
// against a full baseline: rows on only one side are ignored.
func TestCompareSkipsUnmatchedScenarios(t *testing.T) {
	base := sampleFile("quick/nstd-p", "paper/nstd-p")
	cur := sampleFile("quick/nstd-p", "quick/new-algo")
	ds := compare(cur, base, defaultThresholds())
	for _, d := range ds {
		if d.Scenario != "quick/nstd-p" {
			t.Errorf("compared unmatched scenario %s", d.Scenario)
		}
	}
	if want := len(metrics) + 2; len(ds) != want {
		t.Errorf("%d deltas, want %d (one scenario, two shared stages)", len(ds), want)
	}
}

// TestCompareGatesStageRegression checks a per-stage slowdown past the
// wall-clock budget is flagged under its own stage_ns/ metric, and a
// stage present on only one side is skipped.
func TestCompareGatesStageRegression(t *testing.T) {
	base := sampleFile("serve/nstd-p")
	th := defaultThresholds()

	slow := sampleFile("serve/nstd-p")
	slow.Scenarios[0].StageNsPerFrame["matching"] *= 1 + th.Ns + 0.1
	ds := compare(slow, base, th)
	if n := regressionCount(ds); n != 1 {
		t.Fatalf("injected stage regression: %d flagged, want 1", n)
	}
	for _, d := range ds {
		if d.Regressed && d.Metric != "stage_ns/matching" {
			t.Errorf("wrong metric flagged: %s", d.Metric)
		}
	}

	// A stage appearing only in the new run has no baseline to gate
	// against and is skipped, like an unmatched scenario.
	grew := sampleFile("serve/nstd-p")
	grew.Scenarios[0].StageNsPerFrame["commit"] = 9e9
	if n := regressionCount(compare(grew, base, th)); n != 0 {
		t.Errorf("one-sided stage gated: %d regressions", n)
	}

	// Stages below the timing-noise floor on both sides are never
	// gated, however large the ratio; crossing the floor is.
	noisyBase := sampleFile("serve/nstd-p")
	noisyBase.Scenarios[0].StageNsPerFrame["commit"] = 50
	noisy := sampleFile("serve/nstd-p")
	noisy.Scenarios[0].StageNsPerFrame["commit"] = 50 * 20
	if n := regressionCount(compare(noisy, noisyBase, th)); n != 0 {
		t.Errorf("sub-floor stage noise gated: %d regressions", n)
	}
	blewUp := sampleFile("serve/nstd-p")
	blewUp.Scenarios[0].StageNsPerFrame["commit"] = stageNsGateFloor * 100
	if n := regressionCount(compare(blewUp, noisyBase, th)); n != 1 {
		t.Errorf("stage blow-up past the floor: %d regressions, want 1", n)
	}
}

func TestWorseFrac(t *testing.T) {
	cases := []struct {
		base, cur float64
		higherBad bool
		want      float64
	}{
		{100, 150, true, 0.5},   // 50% slower
		{100, 50, true, -0.5},   // improvement is negative
		{100, 50, false, 0.5},   // served halved = 50% worse
		{100, 150, false, -0.5}, // served up = improvement
		{0, 0, true, 0},
		{0, 3, true, 1},   // appeared from zero = 100% worse
		{0, 3, false, -1}, // served appeared = improvement
	}
	for _, tc := range cases {
		if got := worseFrac(tc.base, tc.cur, tc.higherBad); got != tc.want {
			t.Errorf("worseFrac(%v,%v,%v) = %v, want %v", tc.base, tc.cur, tc.higherBad, got, tc.want)
		}
	}
}

func TestParseFlagErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-max-ns-regress", "0"}); err == nil {
		t.Error("accepted zero threshold")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Error("accepted positional argument")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("accepted unknown flag")
	}
}

// tinyArgs shrinks every scenario far below Quick scale so the full
// matrix runs in well under a second.
func tinyArgs(extra ...string) []string {
	return append([]string{
		"-quick", "-frames", "10", "-vol-scale", "0.3", "-taxi-scale", "0.05",
	}, extra...)
}

// TestRunWritesBenchFile runs the (shrunken) quick matrix end to end and
// checks the schema-versioned output.
func TestRunWritesBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var sb strings.Builder
	if err := run(tinyArgs("-out", path), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := readBenchFile(path)
	if err != nil {
		t.Fatalf("readBenchFile: %v", err)
	}
	if f.Schema != benchSchema {
		t.Errorf("schema %q", f.Schema)
	}
	if len(f.Scenarios) != 7 {
		t.Fatalf("%d scenarios, want 4 quick + 3 serve rows", len(f.Scenarios))
	}
	serveCells := 0
	for _, s := range f.Scenarios {
		if s.NsPerFrame <= 0 || s.Frames < 10 || s.Taxis <= 0 {
			t.Errorf("%s: implausible measurements %+v", s.Name, s)
		}
		if s.RingBytes <= 0 {
			t.Errorf("%s: ring bytes %d", s.Name, s.RingBytes)
		}
		if s.Seed != 42 || s.Replicas != 1 {
			t.Errorf("%s: provenance seed=%d replicas=%d", s.Name, s.Seed, s.Replicas)
		}
		// Every cell carries the ledger's per-stage attribution, and the
		// attributed time must fit inside the measured frame cost.
		var stageSum float64
		for _, ns := range s.StageNsPerFrame {
			stageSum += ns
		}
		if len(s.StageNsPerFrame) == 0 || s.StageNsPerFrame["matching"] <= 0 {
			t.Errorf("%s: missing per-stage attribution %v", s.Name, s.StageNsPerFrame)
		}
		if stageSum > s.NsPerFrame {
			t.Errorf("%s: stage ns sum %.0f exceeds ns/frame %.0f", s.Name, stageSum, s.NsPerFrame)
		}
		if s.Scale == "serve" {
			serveCells++
			if s.Accepted <= 0 {
				t.Errorf("%s: admission accepted %d, want > 0", s.Name, s.Accepted)
			}
			if s.Accepted+s.Shed != s.Requests {
				t.Errorf("%s: accepted %d + shed %d != requests %d", s.Name, s.Accepted, s.Shed, s.Requests)
			}
		}
	}
	if serveCells != 3 {
		t.Errorf("serve cells = %d, want 3", serveCells)
	}
	// The overload cell's tight intake queue must actually shed.
	for _, s := range f.Scenarios {
		if s.Name == "serve/nstd-p-overload" && s.Shed == 0 {
			t.Errorf("overload cell shed nothing (queueCap not biting)")
		}
	}
}

// TestRunBaselineGate replays the same seed against its own output
// (must pass with wide perf budgets — the sim is deterministic, so the
// KPIs are identical) and then against a doctored baseline with better
// KPIs (must fail).
func TestRunBaselineGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_base.json")
	var sb strings.Builder
	if err := run(tinyArgs("-out", path), &sb); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	// Wall-clock and alloc counts are machine noise at this scale; open
	// those budgets wide and gate only the deterministic KPIs.
	pass := tinyArgs("-baseline", path, "-max-ns-regress", "1000", "-max-alloc-regress", "1000")
	sb.Reset()
	if err := run(pass, &sb); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "no regressions") {
		t.Errorf("missing pass message:\n%s", sb.String())
	}

	// Doctor the baseline: pretend it served far more passengers.
	base, err := readBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Scenarios {
		base.Scenarios[i].KPIs.Served = base.Scenarios[i].KPIs.Served*10 + 100
	}
	doctored := filepath.Join(dir, "BENCH_doctored.json")
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doctored, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fail := tinyArgs("-baseline", doctored, "-max-ns-regress", "1000", "-max-alloc-regress", "1000")
	sb.Reset()
	err = run(fail, &sb)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("doctored baseline: err = %v, want regression failure", err)
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("delta table missing REGRESSED flag:\n%s", sb.String())
	}
}

// TestReadBenchFileRejectsBadSchema guards the version gate.
func TestReadBenchFileRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other","scenarios":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("err = %v, want schema mismatch", err)
	}
}
