// Command perfbench runs a fixed scenario matrix over the simulator and
// writes a machine-readable benchmark file, optionally gating against a
// previous run:
//
//	perfbench -out BENCH_seed.json                    # full matrix
//	perfbench -quick -out BENCH_pr.json               # quick scale only
//	perfbench -quick -baseline BENCH_seed.json        # regression gate
//
// The matrix crosses the paper's headline algorithms (NSTD-P, NSTD-T,
// STD-P, Greedy) with two scales: Quick (two simulated hours at a tenth
// of the Boston volume, for CI) and paper (one full simulated day). Each
// scenario reports runtime cost (ns/frame, allocs/frame, KPI-ring bytes)
// and end-of-run KPIs with seed and replica provenance, all measured
// through the same internal/tseries recorder that feeds /v1/timeseries.
//
// With -baseline the new run is compared metric-by-metric against the
// previous file; the delta table is printed and the exit status is
// non-zero when any regression exceeds its threshold (-max-ns-regress,
// -max-alloc-regress, -max-kpi-regress, all fractional).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/exp"
	"stabledispatch/internal/prof"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/trace"
	"stabledispatch/internal/tseries"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}

// scenario is one cell of the benchmark matrix.
type scenario struct {
	name  string // e.g. "quick/nstd-p"
	algo  string
	scale string // "quick" or "paper"
	opts  exp.Options
}

// matrix builds the fixed scenario set. quickOnly drops the paper-scale
// rows (the CI configuration); the overrides shrink every scenario for
// tests.
func matrix(quickOnly bool, ov overrides) []scenario {
	algos := []string{"nstd-p", "nstd-t", "std-p", "greedy"}
	scales := []struct {
		name string
		opts exp.Options
	}{{"quick", exp.QuickOptions()}}
	if !quickOnly {
		scales = append(scales, struct {
			name string
			opts exp.Options
		}{"paper", exp.DefaultOptions()})
	}
	var out []scenario
	for _, sc := range scales {
		o := ov.apply(sc.opts)
		for _, algo := range algos {
			out = append(out, scenario{
				name:  sc.name + "/" + algo,
				algo:  algo,
				scale: sc.name,
				opts:  o,
			})
		}
	}
	return out
}

// overrides shrink or reseed every scenario (test and smoke knobs).
type overrides struct {
	frames    int
	volScale  float64
	taxiScale float64
	seed      int64
	workers   int
}

func (ov overrides) apply(o exp.Options) exp.Options {
	if ov.frames > 0 {
		o.Frames = ov.frames
	}
	if ov.volScale > 0 {
		o.VolumeScale = ov.volScale
	}
	if ov.taxiScale > 0 {
		o.TaxiScale = ov.taxiScale
	}
	if ov.seed != 0 {
		o.Seed = ov.seed
	}
	if ov.workers > 0 {
		o.Workers = ov.workers
	}
	return o
}

func perfDispatcher(name string, theta float64) (sim.Dispatcher, error) {
	switch name {
	case "nstd-p":
		return dispatch.NewNSTDP(), nil
	case "nstd-t":
		return dispatch.NewNSTDT(), nil
	case "greedy":
		return dispatch.NewGreedy(), nil
	case "std-p":
		return dispatch.NewSTDP(share.PackConfig{
			Theta: theta, MaxGroupSize: 3, PairRadius: 2 * theta,
		}), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// runScenario simulates one matrix cell, averaging over replicas with
// derived seeds (the same large-prime stride internal/exp uses).
func runScenario(sc scenario, replicas int, progress io.Writer) (scenarioResult, error) {
	if replicas < 1 {
		replicas = 1
	}
	// The per-frame allocation series reads the process-wide heap
	// counter, so a GC cycle landing mid-frame attributes its pool
	// refills to whichever frame it interrupts — at quick scale
	// (~30-alloc frames) that is ±50% run-to-run noise on the very
	// numbers the CI gate budgets. Quick cells have tiny heaps, so run
	// them uncollected and the series becomes a pure function of the
	// code under test; paper-scale cells keep the collector (their
	// frames allocate enough that the noise vanishes in the mean, and
	// their heaps are too big to run uncollected).
	if sc.scale == "quick" {
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		defer runtime.GC()
	}
	// The ledger attributes each frame's cost to pipeline stages; its
	// recording path is allocation-free, so the alloc numbers it rides
	// along with are undisturbed.
	ld := prof.Configure(prof.Config{TopN: 4})
	defer prof.Disable()
	res := scenarioResult{
		Name:     sc.name,
		Algo:     sc.algo,
		Scale:    sc.scale,
		Seed:     sc.opts.Seed,
		Replicas: replicas,
	}
	for r := 0; r < replicas; r++ {
		o := sc.opts
		o.Seed += int64(r) * 100003
		reqs, taxis, err := exp.Workload(trace.Boston(), 13500, 200, o)
		if err != nil {
			return res, err
		}
		if len(reqs) == 0 {
			return res, fmt.Errorf("%s: workload generated no requests (horizon or volume too small)", sc.name)
		}
		d, err := perfDispatcher(sc.algo, o.Theta)
		if err != nil {
			return res, err
		}
		// Capacity covers the horizon plus the drain tail (the run
		// extends past Frames until onboard passengers alight), so no
		// sample is evicted and the per-frame means are unbiased.
		rec := tseries.New(tseries.Config{Capacity: 4*o.Frames + 64})
		s, err := sim.New(sim.Config{
			Params:         o.Params,
			Dispatcher:     d,
			PatienceFrames: o.PatienceMinutes,
			KPI:            rec,
			Workers:        o.Workers,
		}, taxis, reqs)
		if err != nil {
			return res, err
		}
		start := time.Now()
		rep, err := s.Run()
		if err != nil {
			return res, err
		}
		wall := time.Since(start)
		samples := rec.Snapshot()
		if len(samples) == 0 {
			return res, fmt.Errorf("%s: no KPI samples recorded", sc.name)
		}
		var allocs float64
		for _, smp := range samples {
			allocs += float64(smp.Allocs)
		}
		last := samples[len(samples)-1]
		res.Frames += rep.Frames
		res.Requests += len(reqs)
		res.Taxis = len(taxis)
		res.NsPerFrame += float64(wall.Nanoseconds()) / float64(rep.Frames)
		res.AllocsPerFrame += allocs / float64(len(samples))
		res.RingBytes = rec.MemoryBytes()
		res.KPIs.Served += float64(last.Served)
		res.KPIs.Expired += float64(last.Expired)
		res.KPIs.SharedRides += float64(last.SharedRides)
		res.KPIs.DelayMean += last.DelayMean
		res.KPIs.DelayP95 += last.DelayP95
		res.KPIs.PassDissMean += last.PassDissMean
		res.KPIs.TaxiDissMean += last.TaxiDissMean
	}
	n := float64(replicas)
	res.Frames /= replicas
	res.Requests /= replicas
	res.NsPerFrame /= n
	res.AllocsPerFrame /= n
	res.KPIs.Served /= n
	res.KPIs.Expired /= n
	res.KPIs.SharedRides /= n
	res.KPIs.DelayMean /= n
	res.KPIs.DelayP95 /= n
	res.KPIs.PassDissMean /= n
	res.KPIs.TaxiDissMean /= n
	res.StageNsPerFrame = stageNsPerFrame(ld.Summary())
	if progress != nil {
		fmt.Fprintf(progress, "perfbench: %-14s %6d frames  %8.2f ms/frame  served %.0f\n",
			sc.name, res.Frames, res.NsPerFrame/1e6, res.KPIs.Served)
	}
	return res, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	file := benchFile{
		Schema: benchSchema,
		Go:     runtime.Version(),
	}
	for _, sc := range matrix(cfg.quick, cfg.ov) {
		res, err := runScenario(sc, cfg.replicas, os.Stderr)
		if err != nil {
			return err
		}
		file.Scenarios = append(file.Scenarios, res)
	}
	for _, sc := range serveMatrix(cfg.ov) {
		res, err := runServeScenario(sc, cfg.replicas, os.Stderr)
		if err != nil {
			return err
		}
		file.Scenarios = append(file.Scenarios, res)
	}
	if cfg.outPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d scenarios)\n", cfg.outPath, len(file.Scenarios))
	}
	if cfg.baselinePath == "" {
		return nil
	}
	base, err := readBenchFile(cfg.baselinePath)
	if err != nil {
		return err
	}
	deltas := compare(file, base, cfg.th)
	if err := printDeltas(out, deltas); err != nil {
		return err
	}
	if n := regressionCount(deltas); n > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond thresholds vs %s", n, cfg.baselinePath)
	}
	fmt.Fprintf(out, "no regressions vs %s\n", cfg.baselinePath)
	return nil
}

func readBenchFile(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("parse %s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, benchSchema)
	}
	return f, nil
}
