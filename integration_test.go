package stabledispatch

import (
	"math"
	"testing"
)

// TestRoadNetworkSimulation runs the full dispatch loop over the street-
// grid shortest-path metric instead of the Euclidean plane: the road
// substrate, the matching core, and the simulator must compose.
func TestRoadNetworkSimulation(t *testing.T) {
	grid, err := NewRoadGrid(RoadGridConfig{
		Rows: 21, Cols: 21, Spacing: 1, Jitter: 0.1, DropProb: 0.15, Seed: 5,
	})
	if err != nil {
		t.Fatalf("NewRoadGrid: %v", err)
	}
	metric := NewRoadMetric(grid, 256)

	city := Boston() // same 20x20 km extent as the grid
	cfg := BostonConfig(45, 6)
	cfg.RequestsPerDay = 2000
	reqs, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	taxis, err := GenerateTaxis(city, 30, 7)
	if err != nil {
		t.Fatalf("GenerateTaxis: %v", err)
	}

	for _, d := range []Dispatcher{NSTDP(), GreedyDispatcher()} {
		s, err := NewSimulator(SimConfig{
			Metric:     metric,
			Dispatcher: d,
			Params:     DefaultParams(),
		}, taxis, reqs)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("Run(%s): %v", d.Name(), err)
		}
		if rep.ServedCount() == 0 {
			t.Fatalf("%s served nothing on the road network", d.Name())
		}
		// Road distances dominate straight-line distances, so every
		// dissatisfaction sample must be finite and sane.
		for _, v := range rep.PassengerDissatisfactions() {
			if math.IsNaN(v) || v < 0 || v > 100 {
				t.Fatalf("%s produced bogus passenger dissatisfaction %v", d.Name(), v)
			}
		}
	}
}

// TestRoadDistancesDominateEuclidean spot-checks the substrate: a
// shortest street path can never beat the straight line between the same
// snapped intersections.
func TestRoadDistancesDominateEuclidean(t *testing.T) {
	grid, err := NewRoadGrid(RoadGridConfig{Rows: 10, Cols: 10, Spacing: 2, Seed: 8})
	if err != nil {
		t.Fatalf("NewRoadGrid: %v", err)
	}
	metric := NewRoadMetric(grid, 64)
	for i := 0; i < grid.NumNodes(); i += 7 {
		for j := 1; j < grid.NumNodes(); j += 13 {
			a, b := grid.Node(i), grid.Node(j)
			if metric.Distance(a, b) < EuclidMetric.Distance(a, b)-1e-9 {
				t.Fatalf("road distance %v beats straight line %v between %v and %v",
					metric.Distance(a, b), EuclidMetric.Distance(a, b), a, b)
			}
		}
	}
}

// TestSharingOnRoadNetwork exercises Algorithm 3 over the road metric.
func TestSharingOnRoadNetwork(t *testing.T) {
	grid, err := NewRoadGrid(RoadGridConfig{Rows: 15, Cols: 15, Spacing: 1, Seed: 9})
	if err != nil {
		t.Fatalf("NewRoadGrid: %v", err)
	}
	metric := NewRoadMetric(grid, 128)

	reqs := []Request{
		{ID: 0, Pickup: Point{X: 1, Y: 1}, Dropoff: Point{X: 8, Y: 1}},
		{ID: 1, Pickup: Point{X: 1.5, Y: 1}, Dropoff: Point{X: 8.5, Y: 1.2}},
		{ID: 2, Pickup: Point{X: 13, Y: 13}, Dropoff: Point{X: 2, Y: 13}},
	}
	res, err := PackRequests(reqs, metric, DefaultPackConfig())
	if err != nil {
		t.Fatalf("PackRequests: %v", err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (the two parallel riders)", len(res.Groups))
	}
	got := res.Groups[0].Members
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("group members = %v, want [0 1]", got)
	}
}
