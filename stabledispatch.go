// Package stabledispatch is an O2O (online-to-offline) taxi dispatching
// library built around passenger-driver matching stability, reproducing
// Zheng & Wu, "Online to Offline Business: Urban Taxi Dispatching with
// Passenger-Driver Matching Stability" (ICDCS 2017).
//
// In the O2O taxi business (Uber-style platforms) taxis are privately
// owned, so a dispatch schedule has to balance three parties: passengers
// want nearby taxis, drivers want profitable rides, and the platform
// wants as many stably matched rides as possible. This package exposes:
//
//   - The stable-matching core: Algorithm 1 (passenger-optimal deferred
//     acceptance with dummy partners), the taxi-optimal matching, and
//     Algorithm 2 (enumeration of all stable matchings).
//   - Sharing dispatch (Algorithm 3): shared-route planning, feasible
//     group packing via maximum set packing, and stable matching of
//     packed groups.
//   - Dispatchers for a discrete-time fleet simulator: NSTD-P, NSTD-T,
//     STD-P, STD-T, plus the literature baselines (greedy nearest,
//     minimum-cost matching, bottleneck matching, RAII, SARP, ILP).
//   - Calibrated synthetic New York and Boston workloads and the
//     experiment harness regenerating every figure of the paper.
//
// # Quick start
//
//	city := stabledispatch.Boston()
//	reqs, _ := stabledispatch.GenerateTrace(stabledispatch.BostonConfig(1440, 1))
//	taxis, _ := stabledispatch.GenerateTaxis(city, 200, 2)
//	sim, _ := stabledispatch.NewSimulator(stabledispatch.SimConfig{
//		Dispatcher: stabledispatch.NSTDP(),
//		Params:     stabledispatch.DefaultParams(),
//	}, taxis, reqs)
//	report, _ := sim.Run()
//	fmt.Println(report.ServedCount())
package stabledispatch

import (
	"time"

	"stabledispatch/internal/carpool"
	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/exp"
	"stabledispatch/internal/fault"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/roadnet"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/stable"
	"stabledispatch/internal/stream"
	"stabledispatch/internal/trace"
	"stabledispatch/internal/tseries"
)

// Core geometry types.
type (
	// Point is a location on the city plane, in kilometres.
	Point = geo.Point
	// Rect is an axis-aligned rectangle of the city plane.
	Rect = geo.Rect
	// Metric measures travel distance between two points.
	Metric = geo.Metric
)

// Euclidean and Manhattan plane metrics.
var (
	EuclidMetric    = geo.EuclidMetric
	ManhattanMetric = geo.ManhattanMetric
)

// Domain model types.
type (
	// Request is a passenger request with pickup and drop-off.
	Request = fleet.Request
	// Taxi is a privately owned vehicle.
	Taxi = fleet.Taxi
	// Stop is one waypoint of a taxi route.
	Stop = fleet.Stop
	// Assignment dispatches one taxi to one or more requests.
	Assignment = fleet.Assignment
)

// Matching-market types.
type (
	// Params holds the interest-model coefficients (α, β, dummy
	// thresholds).
	Params = pref.Params
	// Market is a two-sided matching instance between requests and
	// taxis.
	Market = pref.Market
	// Instance is a non-sharing market plus its raw distances.
	Instance = pref.Instance
	// Matching is a taxi dispatch schedule.
	Matching = stable.Matching
)

// Unmatched marks a request or taxi with a dummy partner (no dispatch).
const Unmatched = stable.Unmatched

// DefaultParams returns the paper's evaluation coefficients
// (α = β = 1, 10 km pickup threshold, 2 km taxi net-loss threshold).
func DefaultParams() Params { return pref.DefaultParams() }

// UnboundedParams disables both dummy thresholds, recovering classic
// stable marriage behaviour.
func UnboundedParams() Params { return pref.Unbounded() }

// NewInstance builds the non-sharing matching market for one batch of
// requests and idle taxis (§IV-A interest model).
func NewInstance(reqs []Request, taxis []Taxi, m Metric, p Params) (*Instance, error) {
	return pref.NewInstance(reqs, taxis, m, p)
}

// SplitOversized divides requests whose party exceeds maxSeats into
// multiple same-location requests (§IV-A); new parts take IDs from
// nextID upward.
func SplitOversized(reqs []Request, maxSeats, nextID int) []Request {
	return pref.SplitOversized(reqs, maxSeats, nextID)
}

// PassengerOptimal runs Algorithm 1 and returns the passenger-optimal
// stable matching.
func PassengerOptimal(m *Market) Matching { return stable.PassengerOptimal(m) }

// TaxiOptimal returns the taxi-optimal stable matching.
func TaxiOptimal(m *Market) Matching { return stable.TaxiOptimal(m) }

// AllStableMatchings runs Algorithm 2, enumerating every stable matching
// (the passenger-optimal one first). limit caps the result length; 0
// means unlimited.
func AllStableMatchings(m *Market, limit int) []Matching {
	return stable.AllStableMatchings(m, limit)
}

// IsStable verifies a matching against Definition 1, returning nil when
// stable.
func IsStable(m *Market, match Matching) error { return stable.IsStable(m, match) }

// MedianStable returns the median stable matching — halfway between the
// passenger-optimal and taxi-optimal extremes. limit caps the underlying
// enumeration (0 = unlimited).
func MedianStable(m *Market, limit int) Matching { return stable.MedianStable(m, limit) }

// Sharing types.
type (
	// PackConfig controls share-group generation (θ, group size).
	PackConfig = share.PackConfig
	// PackResult is the outcome of the packing stage.
	PackResult = share.PackResult
	// ShareGroup is a feasible subset of requests sharing one taxi.
	ShareGroup = share.Group
	// RoutePlan is an optimal shared route.
	RoutePlan = share.RoutePlan
)

// DefaultPackConfig returns the paper's sharing settings (θ = 5 km,
// groups of at most 3).
func DefaultPackConfig() PackConfig { return share.DefaultPackConfig() }

// PackRequests runs Algorithm 3's first stage: feasible-group generation
// plus maximum set packing.
func PackRequests(reqs []Request, m Metric, cfg PackConfig) (PackResult, error) {
	return share.Pack(reqs, m, cfg)
}

// BestSharedRoute exhaustively plans the optimal pickup-before-drop-off
// route for a group of at most three requests.
func BestSharedRoute(reqs []Request, m Metric) (RoutePlan, error) {
	return share.BestRoute(reqs, m)
}

// Simulator types.
type (
	// SimConfig parameterises a simulation run. Its Workers field sizes
	// the per-frame cost-plane worker pool (the shared distance oracle
	// every dispatcher reads); ≤ 0 means runtime.GOMAXPROCS(0), and
	// simulation output is bit-identical for every value.
	SimConfig = sim.Config
	// Simulator is the discrete-time fleet simulator.
	Simulator = sim.Simulator
	// Frame is the dispatcher's view of one time step.
	Frame = sim.Frame
	// TaxiView is the dispatcher-visible state of one taxi.
	TaxiView = sim.TaxiView
	// Dispatcher decides assignments each frame.
	Dispatcher = sim.Dispatcher
	// Report is the outcome of a simulation run.
	Report = sim.Report
	// RequestOutcome records one request's trip.
	RequestOutcome = sim.RequestOutcome
	// EpisodeOutcome records one taxi busy period.
	EpisodeOutcome = sim.EpisodeOutcome
	// AssignmentOutcome records one dispatch decision.
	AssignmentOutcome = sim.AssignmentOutcome
	// Outage injects a taxi failure window into a simulation.
	Outage = sim.Outage
	// Event is one lifecycle event of a simulated request.
	Event = sim.Event
	// EventSink receives simulator events as they happen.
	EventSink = sim.EventSink
	// EventSinkFunc adapts a function to the EventSink interface.
	EventSinkFunc = sim.EventSinkFunc
	// FaultInjector supplies cancellation and breakdown decisions to a
	// simulation (SimConfig.Faults).
	FaultInjector = sim.FaultInjector
	// FaultConfig parameterises a seeded fault schedule.
	FaultConfig = fault.Config
	// FaultSchedule is a deterministic, seed-derived FaultInjector.
	FaultSchedule = fault.Schedule
)

// NewFaultSchedule derives a reproducible fault-injection schedule
// (breakdowns, driver and passenger cancellations) from cfg.Seed.
func NewFaultSchedule(cfg FaultConfig) (*FaultSchedule, error) {
	return fault.New(cfg)
}

// ResilientDispatcher wraps primary with a per-frame compute deadline
// and panic recovery, degrading the frame to fallback (Greedy when nil)
// on overrun, panic, or error.
func ResilientDispatcher(primary, fallback Dispatcher, deadline time.Duration) Dispatcher {
	return dispatch.NewResilient(primary, fallback, deadline)
}

// NewSimulator builds a simulator over the given fleet and request
// trace.
func NewSimulator(cfg SimConfig, taxis []Taxi, reqs []Request) (*Simulator, error) {
	return sim.New(cfg, taxis, reqs)
}

// NSTDP returns the paper's passenger-optimal stable dispatcher
// (Algorithm 1).
func NSTDP() Dispatcher { return dispatch.NewNSTDP() }

// NSTDT returns the taxi-optimal stable dispatcher.
func NSTDT() Dispatcher { return dispatch.NewNSTDT() }

// NSTDC returns the company-optimal stable dispatcher: Algorithm 2 picks
// the stable matching minimising total idle pickup distance (§IV-D).
func NSTDC() Dispatcher { return dispatch.NewNSTDC() }

// NSTDM returns the median stable dispatcher: the fairness compromise
// between the passenger-optimal and taxi-optimal matchings.
func NSTDM() Dispatcher { return dispatch.NewNSTDM() }

// STDP returns the sharing passenger-optimal dispatcher (Algorithm 3).
func STDP(cfg PackConfig) Dispatcher { return dispatch.NewSTDP(cfg) }

// STDT returns the sharing taxi-optimal dispatcher.
func STDT(cfg PackConfig) Dispatcher { return dispatch.NewSTDT(cfg) }

// GreedyDispatcher returns the nearest-taxi baseline.
func GreedyDispatcher() Dispatcher { return dispatch.NewGreedy() }

// MinCostDispatcher returns the minimum-cost matching baseline.
func MinCostDispatcher() Dispatcher { return dispatch.NewMinCost() }

// BottleneckDispatcher returns the bottleneck matching baseline.
func BottleneckDispatcher() Dispatcher { return dispatch.NewBottleneck() }

// CarpoolConfig configures the sharing baselines RAII and SARP.
type CarpoolConfig = carpool.Config

// DefaultCarpoolConfig mirrors the paper's sharing evaluation settings.
func DefaultCarpoolConfig() CarpoolConfig { return carpool.DefaultConfig() }

// RAIIDispatcher returns the spatio-temporal-index sharing baseline.
func RAIIDispatcher(cfg CarpoolConfig) Dispatcher { return carpool.NewRAII(cfg) }

// SARPDispatcher returns the TSP-insertion sharing baseline.
func SARPDispatcher(cfg CarpoolConfig) Dispatcher { return carpool.NewSARP(cfg) }

// ILPDispatcher returns the integer-programming sharing baseline.
func ILPDispatcher(cfg PackConfig) Dispatcher { return carpool.NewILP(cfg) }

// Decision-provenance tracing types. The trace layer records why each
// dispatch decision was taken — Gale–Shapley proposals and refusals with
// both sides' preference ranks, share-group formation and rejection, and
// a per-frame stability certificate (a Definition 1 blocking-pair scan
// of the realized matching).
type (
	// TraceRecorder is a bounded ring of per-request decision traces.
	TraceRecorder = dtrace.Recorder
	// DecisionTrace is one request's causally ordered decision timeline.
	DecisionTrace = dtrace.Trace
	// TraceEvent is one recorded decision step.
	TraceEvent = dtrace.Event
	// StabilityCertificate is a frame-commit audit of the realized
	// matching against Definition 1.
	StabilityCertificate = dtrace.Certificate
	// BlockingPair is one stability violation: a passenger-taxi pair
	// that would rather elope than keep their partners.
	BlockingPair = dtrace.BlockingPair
)

// SetDecisionTracing toggles the process-wide decision-trace layer.
// Tracing is off by default; when off, instrumentation costs one atomic
// load per site.
func SetDecisionTracing(on bool) { dtrace.SetEnabled(on) }

// DecisionTracingEnabled reports whether the trace layer is recording.
func DecisionTracingEnabled() bool { return dtrace.Enabled() }

// DecisionTracer returns the process-wide trace recorder that the
// dispatchers and simulator record into while tracing is enabled.
func DecisionTracer() *TraceRecorder { return dtrace.Default() }

// CertifyStability audits a realized matching against Definition 1 under
// the market's interest model: reqPartner[j] is the taxi index matched
// to request j (−1 for unmatched), and reqIDs/taxiIDs translate market
// indices to fleet IDs for the evidence.
func CertifyStability(frame int, m *Market, reqPartner, reqIDs, taxiIDs []int) *StabilityCertificate {
	return dtrace.Certify(frame, m, reqPartner, reqIDs, taxiIDs)
}

// Per-frame KPI time-series types. A KPIRecorder attached to
// SimConfig.KPI receives one fixed-width sample per simulated frame —
// the paper's quality metrics (dispatch delay mean/p95, dissatisfaction
// means, served/queued/expired counts) alongside runtime cost (frame
// wall-clock, allocations, route-cache hit rate) — in a bounded ring.
type (
	// KPIRecorder is the bounded per-frame sample ring.
	KPIRecorder = tseries.Recorder
	// KPIRecorderConfig sizes the ring and selects its retention policy
	// (evict-oldest sliding window, or downsample to keep the whole-run
	// trajectory at halving resolution).
	KPIRecorderConfig = tseries.Config
	// KPISample is one frame's KPI observation.
	KPISample = tseries.Sample
)

// NewKPIRecorder returns a per-frame KPI ring; attach it via
// SimConfig.KPI and query it with Simulator.KPISeries / KPIWindow.
func NewKPIRecorder(cfg KPIRecorderConfig) *KPIRecorder { return tseries.New(cfg) }

// KPISeriesNames lists every queryable series name, in sample order.
func KPISeriesNames() []string { return append([]string(nil), tseries.SeriesNames...) }

// Trace and workload types.
type (
	// City describes a simulated city's demand geography.
	City = trace.City
	// TraceConfig parameterises synthetic trace generation.
	TraceConfig = trace.Config
)

// NewYork returns the synthetic stand-in for the paper's New York trace.
func NewYork() City { return trace.NewYork() }

// Boston returns the synthetic stand-in for the paper's Boston trace.
func Boston() City { return trace.Boston() }

// NewYorkConfig returns the calibrated New York generation config.
func NewYorkConfig(frames int, seed int64) TraceConfig { return trace.NewYorkConfig(frames, seed) }

// BostonConfig returns the calibrated Boston generation config.
func BostonConfig(frames int, seed int64) TraceConfig { return trace.BostonConfig(frames, seed) }

// GenerateTrace produces a deterministic synthetic request trace.
func GenerateTrace(cfg TraceConfig) ([]Request, error) { return trace.Generate(cfg) }

// GenerateTaxis seeds n taxis from the city's 2-D normal distribution.
func GenerateTaxis(city City, n int, seed int64) ([]Taxi, error) {
	return trace.Taxis(city, n, seed)
}

// Road-network substrate.
type (
	// RoadGraph is an undirected road network.
	RoadGraph = roadnet.Graph
	// RoadGridConfig describes a perturbed-grid city road network.
	RoadGridConfig = roadnet.GridConfig
	// RoadMetric adapts a road network to the Metric interface.
	RoadMetric = roadnet.Metric
)

// NewRoadGrid builds a perturbed-grid city road network.
func NewRoadGrid(cfg RoadGridConfig) (*RoadGraph, error) { return roadnet.NewGrid(cfg) }

// NewRoadMetric wraps a road network as a Metric with a shortest-path
// cache.
func NewRoadMetric(g *RoadGraph, cacheSources int) *RoadMetric {
	return roadnet.NewMetric(g, cacheSources)
}

// Experiment harness types.
type (
	// ExpOptions scales an experiment run.
	ExpOptions = exp.Options
	// ExpFigure is the reproduction of one paper figure.
	ExpFigure = exp.Figure
)

// DefaultExpOptions reproduces the paper's setting over one simulated
// day.
func DefaultExpOptions() ExpOptions { return exp.DefaultOptions() }

// QuickExpOptions is a shrunken configuration for fast runs.
func QuickExpOptions() ExpOptions { return exp.QuickOptions() }

// FigureIDs lists the reproducible paper figures in order.
func FigureIDs() []string { return exp.FigureIDs() }

// RunFigure regenerates one paper figure ("fig4" … "fig9").
func RunFigure(id string, o ExpOptions) (ExpFigure, error) {
	run, ok := exp.Figures()[id]
	if !ok {
		return ExpFigure{}, &UnknownFigureError{ID: id}
	}
	return run(o)
}

// UnknownFigureError reports a figure ID outside FigureIDs.
type UnknownFigureError struct {
	ID string
}

// Error implements the error interface.
func (e *UnknownFigureError) Error() string {
	return "stabledispatch: unknown figure " + e.ID
}

// SLO engine types. An SLOEngine attached to SimConfig.SLO evaluates
// declarative objectives ("max(delay_p95) < 3", "frac(expired, served)
// < 1%") against every recorded KPI sample with multi-window burn-rate
// alerting and a hysteresis state machine; breach transitions fire the
// flight recorder.
type (
	// SLODef is one declarative objective.
	SLODef = slo.Def
	// SLOEngine evaluates a set of objectives frame by frame.
	SLOEngine = slo.Engine
	// SLOStatus is one objective's externally visible alert state.
	SLOStatus = slo.Status
	// SLOState is an objective's hysteresis state (ok, warning, breach,
	// recovered).
	SLOState = slo.State
)

// NewSLOEngine validates defs and builds an engine.
func NewSLOEngine(defs []SLODef) (*SLOEngine, error) { return slo.New(defs) }

// ParseSLOFile loads objective definitions from an SLO file (one
// "name: agg(series) op threshold" line per objective).
func ParseSLOFile(path string) ([]SLODef, error) { return slo.ParseFile(path) }

// Flight-recorder types: a bounded black-box ring of per-frame context
// that freezes into a self-contained diagnostic bundle (manifest, KPI
// CSV, event/frame JSONL) on SLO breach, dispatch degrade, stability
// violation, panic, or manual trigger.
type (
	// FlightRecorder is the bounded black box.
	FlightRecorder = flightrec.Recorder
	// FlightRecorderConfig parameterises the ring, cooldown, and
	// retention bounds.
	FlightRecorderConfig = flightrec.Config
	// BundleManifest is the machine-readable index of one bundle.
	BundleManifest = flightrec.Manifest
)

// ConfigureFlightRecorder installs the process-wide flight recorder the
// simulator, the resilient dispatcher, and the SLO engine trigger into.
// Disable with DisableFlightRecorder.
func ConfigureFlightRecorder(cfg FlightRecorderConfig) (*FlightRecorder, error) {
	return flightrec.Configure(cfg)
}

// DisableFlightRecorder uninstalls the process-wide flight recorder.
func DisableFlightRecorder() { flightrec.Disable() }

// ActiveFlightRecorder returns the installed flight recorder, or nil
// while flight recording is disabled.
func ActiveFlightRecorder() *FlightRecorder { return flightrec.Active() }

// ReadBundleManifest loads and schema-checks one bundle's manifest.
func ReadBundleManifest(bundleDir string) (BundleManifest, error) {
	return flightrec.ReadManifest(bundleDir)
}

// Telemetry streaming types: a broadcast hub fans per-frame telemetry
// (KPI samples, SLO transitions, admission decisions, lifecycle events,
// operator notices) to subscribers through bounded per-subscriber
// rings; a slow subscriber drops its own oldest entries and can never
// block a producer. dispatchd serves the installed hub at GET
// /v1/stream over SSE.
type (
	// StreamHub is the broadcast hub.
	StreamHub = stream.Hub
	// StreamSub is one subscription with its bounded ring.
	StreamSub = stream.Sub
	// StreamTopic names one telemetry topic (kpi, slo, admission,
	// events, notice).
	StreamTopic = stream.Topic
	// StreamMsg is one published message: topic, sequence, frame, and
	// the marshalled payload shared by every subscriber.
	StreamMsg = stream.Msg
)

// NewStreamHub builds a hub and registers its obs metrics
// (stream_published_total, stream_dropped_total, stream_subscribers).
func NewStreamHub() *StreamHub { return stream.NewHub() }

// SetActiveStreamHub installs (or, with nil, removes) the process-wide
// hub the simulator, SLO engine, admission controller, and resilient
// dispatcher publish into.
func SetActiveStreamHub(h *StreamHub) { stream.SetActive(h) }

// ActiveStreamHub returns the installed hub, or nil when streaming is
// off.
func ActiveStreamHub() *StreamHub { return stream.Active() }

// StreamTopics lists the valid telemetry topics.
func StreamTopics() []StreamTopic { return append([]StreamTopic(nil), stream.Topics...) }
