package stabledispatch_test

import (
	"fmt"

	"stabledispatch"
)

// Example dispatches one frame's worth of requests with Algorithm 1 and
// prints the stable schedule.
func Example() {
	requests := []stabledispatch.Request{
		{ID: 0, Pickup: stabledispatch.Point{X: 1}, Dropoff: stabledispatch.Point{X: 6}},
		{ID: 1, Pickup: stabledispatch.Point{X: 4}, Dropoff: stabledispatch.Point{X: 12}},
		{ID: 2, Pickup: stabledispatch.Point{X: 9}, Dropoff: stabledispatch.Point{X: 9.5}},
	}
	taxis := []stabledispatch.Taxi{
		{ID: 0, Pos: stabledispatch.Point{X: 0}},
		{ID: 1, Pos: stabledispatch.Point{X: 5}},
	}

	inst, err := stabledispatch.NewInstance(requests, taxis,
		stabledispatch.EuclidMetric, stabledispatch.DefaultParams())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	matching := stabledispatch.PassengerOptimal(&inst.Market)
	for j, i := range matching.ReqPartner {
		if i == stabledispatch.Unmatched {
			fmt.Printf("request %d: unserved (dummy partner)\n", requests[j].ID)
		} else {
			fmt.Printf("request %d: taxi %d\n", requests[j].ID, taxis[i].ID)
		}
	}
	// Output:
	// request 0: taxi 0
	// request 1: taxi 1
	// request 2: unserved (dummy partner)
}

// ExampleBestSharedRoute plans the optimal shared route for two
// co-directional riders.
func ExampleBestSharedRoute() {
	riders := []stabledispatch.Request{
		{ID: 0, Pickup: stabledispatch.Point{X: 0}, Dropoff: stabledispatch.Point{X: 10}},
		{ID: 1, Pickup: stabledispatch.Point{X: 1}, Dropoff: stabledispatch.Point{X: 9}},
	}
	plan, err := stabledispatch.BestSharedRoute(riders, stabledispatch.EuclidMetric)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("route length: %.0f km\n", plan.Length)
	for _, stop := range plan.Stops {
		fmt.Printf("%v r%d\n", stop.Kind, stop.RequestID)
	}
	// Output:
	// route length: 10 km
	// pickup r0
	// pickup r1
	// dropoff r1
	// dropoff r0
}
